"""End-to-end ingestion: pipeline, engines, round-trips, CLI, memory bound."""

import os

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.errors import ConfigError, TraceFormatError
from repro.ingest import IngestOptions, detect_format, ingest_trace
from repro.trace.io import load_trace, save_trace

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "ingest")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


ALL_FORMATS = [
    ("tiny.lackey", "lackey"),
    ("tiny.lackey.gz", "lackey"),
    ("tiny.din", "dinero"),
    ("tiny.csv", "csv"),
    ("tiny.jsonl", "jsonl"),
]


class TestPipeline:
    def test_detect_format(self):
        for name, expected in ALL_FORMATS:
            assert detect_format(fixture(name)) == expected
        with pytest.raises(TraceFormatError):
            detect_format("trace.xyz")

    @pytest.mark.parametrize("name,fmt", ALL_FORMATS)
    def test_every_format_builds_a_valid_trace(self, name, fmt):
        trace = ingest_trace(fixture(name))
        stats = trace.ingest_stats
        assert stats["format"] == fmt
        assert stats["records"] == len(trace) > 0
        assert stats["regions"] >= 1
        # The engines' fill invariant: every approximate access's block
        # is covered by the initial memory image.
        approx_blocks = set(
            (trace.addrs[trace.approx] & ~np.int64(63)).tolist()
        )
        assert approx_blocks <= set(trace.initial_image)

    def test_bounded_memory_on_fixture_larger_than_chunk(self):
        # tiny.lackey holds 384 records; chunk 64 forces multiple
        # batches and the peak parsed batch must respect the bound.
        trace = ingest_trace(fixture("tiny.lackey"), chunk_size=64)
        stats = trace.ingest_stats
        assert stats["records"] > stats["chunk_size"] == 64
        assert stats["batches"] > 1
        assert stats["max_batch"] <= 64

    def test_chunk_size_does_not_change_the_trace(self):
        small = ingest_trace(fixture("tiny.din"), chunk_size=7)
        large = ingest_trace(fixture("tiny.din"), chunk_size=100000)
        np.testing.assert_array_equal(small.addrs, large.addrs)
        np.testing.assert_array_equal(small.region_ids, large.region_ids)
        assert small.initial_image == large.initial_image

    def test_ingestion_is_deterministic(self):
        a = ingest_trace(fixture("tiny.lackey"))
        b = ingest_trace(fixture("tiny.lackey"))
        np.testing.assert_array_equal(a.addrs, b.addrs)
        for va, vb in zip(a.values, b.values):
            np.testing.assert_array_equal(va, vb)

    def test_embedded_values_reach_the_value_table(self):
        trace = ingest_trace(fixture("tiny.csv"))
        assert trace.ingest_stats["embedded_values"]
        assert trace.ingest_stats["value_model"] is None
        (region,) = [r for r in trace.regions if r.approx]
        # Observed span drives the annotation (values in [-2, 6)).
        assert region.vmin < 0 and region.vmax > 1

    def test_core_striping(self):
        trace = ingest_trace(fixture("tiny.din"), cores=4)
        assert set(trace.cores.tolist()) == {0, 1, 2, 3}

    def test_name_defaults_to_stem(self):
        assert ingest_trace(fixture("tiny.lackey.gz")).name == "tiny"
        named = ingest_trace(fixture("tiny.lackey"), name="imported")
        assert named.name == "imported"

    def test_empty_input_rejected(self, tmp_path):
        p = tmp_path / "empty.lackey"
        p.write_text("==1== banner only\n")
        with pytest.raises(TraceFormatError) as excinfo:
            ingest_trace(str(p))
        assert "no memory accesses" in str(excinfo.value)

    def test_gzip_spills_once_and_matches_restreaming(self):
        spilled = ingest_trace(fixture("tiny.lackey.gz"))
        streamed = ingest_trace(fixture("tiny.lackey.gz"), spill=False)
        assert spilled.ingest_stats["spilled"] is True
        assert streamed.ingest_stats["spilled"] is False
        np.testing.assert_array_equal(spilled.addrs, streamed.addrs)
        np.testing.assert_array_equal(spilled.region_ids, streamed.region_ids)
        assert spilled.initial_image == streamed.initial_image

    def test_plain_input_never_spills(self):
        assert ingest_trace(fixture("tiny.lackey")).ingest_stats["spilled"] is False

    def test_spill_file_is_cleaned_up(self, tmp_path, monkeypatch):
        monkeypatch.setattr("tempfile.tempdir", str(tmp_path))
        ingest_trace(fixture("tiny.lackey.gz"))
        assert list(tmp_path.iterdir()) == []

    def test_spill_error_context_names_the_input(self, tmp_path):
        import gzip

        bad = tmp_path / "bad.lackey.gz"
        with open(fixture("bad.lackey"), "rb") as src:
            bad.write_bytes(gzip.compress(src.read()))
        with pytest.raises(TraceFormatError) as excinfo:
            ingest_trace(str(bad))
        assert excinfo.value.path == str(bad)
        assert excinfo.value.line is not None

    def test_not_actually_gzip_is_a_trace_error(self, tmp_path):
        fake = tmp_path / "fake.lackey.gz"
        fake.write_text("L 1000,8\n")
        with pytest.raises(TraceFormatError) as excinfo:
            ingest_trace(str(fake))
        assert "decompress" in str(excinfo.value)

    def test_missing_gzip_input(self, tmp_path):
        with pytest.raises(TraceFormatError) as excinfo:
            ingest_trace(str(tmp_path / "nope.lackey.gz"))
        assert "no such trace file" in str(excinfo.value)

    @pytest.mark.parametrize(
        "kwargs,field",
        [
            ({"chunk_size": 0}, "chunk_size"),
            ({"block_size": 48}, "block_size"),
            ({"gap_blocks": 0}, "gap_blocks"),
            ({"cores": 0}, "cores"),
            ({"approx_min_blocks": 0}, "approx_min_blocks"),
        ],
    )
    def test_option_validation(self, kwargs, field):
        with pytest.raises(ConfigError) as excinfo:
            IngestOptions(**kwargs)
        assert excinfo.value.field == field


class TestReplay:
    @pytest.mark.parametrize("name,fmt", ALL_FORMATS)
    def test_both_engines_bit_identical(self, name, fmt):
        trace = ingest_trace(fixture(name), chunk_size=64)
        batched = repro.simulate(trace=trace, config="dopp", engine="batched")
        reference = repro.simulate(trace=trace, config="dopp", engine="reference")
        assert batched.system.to_dict() == reference.system.to_dict()

    def test_npz_round_trip_replays_identically(self, tmp_path):
        trace = ingest_trace(fixture("tiny.lackey"))
        before = repro.simulate(trace=trace, config="dopp")
        path = str(tmp_path / "t.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.addrs, trace.addrs)
        assert loaded.initial_image == trace.initial_image
        after = repro.simulate(trace=loaded, config="dopp")
        assert after.system.to_dict() == before.system.to_dict()

    def test_simulate_accepts_paths(self, tmp_path):
        by_file = repro.simulate(trace=fixture("tiny.din"), config="uni")
        trace = ingest_trace(fixture("tiny.din"))
        by_object = repro.simulate(trace=trace, config="uni")
        assert by_file.system.to_dict() == by_object.system.to_dict()
        npz = str(tmp_path / "t.npz")
        save_trace(trace, npz)
        by_npz = repro.simulate(trace=npz, config="uni")
        assert by_npz.system.to_dict() == by_object.system.to_dict()

    def test_simulate_requires_exactly_one_source(self):
        with pytest.raises(ConfigError):
            repro.simulate()
        with pytest.raises(ConfigError):
            repro.simulate("jpeg", trace=fixture("tiny.din"))


class TestCLI:
    def test_ingest_writes_and_verifies_both_engines(self, tmp_path, capsys):
        out = str(tmp_path / "t.npz")
        rc = main(
            ["ingest", fixture("tiny.lackey"), "--out", out,
             "--chunk", "64", "--simulate"]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "engines agree bit-identically" in text
        assert os.path.exists(out)

    def test_replay_both_engines(self, tmp_path, capsys):
        out = str(tmp_path / "t.npz")
        save_trace(ingest_trace(fixture("tiny.csv")), out)
        assert main(["replay", out, "--config", "dopp", "--engine", "both"]) == 0
        assert "engines agree bit-identically" in capsys.readouterr().out

    def test_missing_input_exits_3(self, tmp_path, capsys):
        assert main(["ingest", str(tmp_path / "nope.lackey")]) == 3
        assert "no such trace file" in capsys.readouterr().err

    def test_bad_knob_exits_2(self, capsys):
        assert main(["ingest", fixture("tiny.din"), "--chunk", "0"]) == 2
