"""Determinism tests for the fault-injection PRNG primitives.

The whole resilience story rests on ``splitmix64`` / ``_hash`` /
``_uniform`` being pure functions of their integer inputs: the same
(seed, site, counter) triple must produce the same fault decision on
every platform, engine and job count, forever. These tests pin the
functions down two ways — golden values against the published
splitmix64 reference outputs, and hypothesis property tests for the
range/determinism invariants the fault model depends on.
"""

from hypothesis import given, settings, strategies as st

from repro.resilience.faults import _MASK64, _hash, _uniform, splitmix64

u64 = st.integers(min_value=0, max_value=_MASK64)


class TestGoldenValues:
    """Pin the exact bit patterns so a refactor cannot drift them."""

    def test_splitmix64_reference_outputs(self):
        """Match the canonical splitmix64 reference sequence."""
        assert splitmix64(0) == 0xE220A8397B1DCDAF
        assert splitmix64(1) == 0x910A2DEC89025CC1
        assert splitmix64(0xDEADBEEF) == 0x4ADFB90F68C9EB9B
        assert splitmix64(_MASK64) == 0xE4D971771B652C20

    def test_splitmix64_sequence(self):
        """Chaining states walks the canonical seed-0 stream."""
        state, outputs = 0, []
        for _ in range(3):
            state = (state + 0x9E3779B97F4A7C15) & _MASK64
            outputs.append(splitmix64(state - 0x9E3779B97F4A7C15))
        assert outputs[0] == 0xE220A8397B1DCDAF

    def test_hash_golden(self):
        """The site/counter/salt hash is frozen too."""
        assert _hash(11, 5, 7, 1) == 0x43425395894E15CD

    def test_uniform_golden(self):
        """Known hash -> known float, including the extremes."""
        assert _uniform(0) == 0.0
        assert _uniform(1) == 0.0  # low 11 bits discarded
        assert _uniform(1 << 63) == 0.5
        assert _uniform(_MASK64) == 0.9999999999999999
        assert _uniform(splitmix64(42)) == 0.7415648787718233


class TestProperties:
    """Invariants the fault model relies on, over random inputs."""

    @settings(max_examples=200)
    @given(u64)
    def test_splitmix64_range_and_determinism(self, x):
        """Output is a 64-bit value and a pure function of the input."""
        y = splitmix64(x)
        assert 0 <= y <= _MASK64
        assert splitmix64(x) == y

    @settings(max_examples=200)
    @given(u64)
    def test_uniform_half_open_range(self, h):
        """_uniform maps every 64-bit hash into [0, 1)."""
        v = _uniform(h)
        assert 0.0 <= v < 1.0
        assert _uniform(h) == v

    @settings(max_examples=100)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=2**47 - 1),
        st.integers(min_value=1, max_value=3),
    )
    def test_hash_determinism(self, seed, site, counter, salt):
        """Same (seed, site, counter, salt) -> same hash, in range."""
        h = _hash(seed, site, counter, salt)
        assert 0 <= h <= _MASK64
        assert _hash(seed, site, counter, salt) == h

    @settings(max_examples=100)
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=0, max_value=2**20))
    def test_hash_salt_streams_independent(self, seed, counter):
        """Different salts give different streams for the same site."""
        assert _hash(seed, 0, counter, 1) != _hash(seed, 0, counter, 2)
