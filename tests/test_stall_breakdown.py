"""Tests for the CPI stall-attribution instrumentation."""

import numpy as np
import pytest

from repro.hierarchy.llc import BaselineLLC
from repro.hierarchy.system import System
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap
from repro.trace.trace import TraceBuilder


def make_trace(rng, size_kb, repeats=1, gap=8):
    region = Region("r", 0, size_kb * 1024, DType.F32, approx=True, vmin=0, vmax=100)
    regions = RegionMap([region])
    builder = TraceBuilder("t", regions)
    data = rng.uniform(0, 100, region.num_elements).astype(np.float32)
    builder.register_block_values(region, data)
    idx = np.tile(np.arange(region.num_blocks()), repeats)
    cores = (np.arange(len(idx)) % 4).astype(np.int8)
    builder.append_region_accesses(0, idx, cores, gap=gap)
    return builder.build()


class TestBreakdown:
    def test_categories_present(self, rng):
        result = System(BaselineLLC()).run(make_trace(rng, 64))
        assert set(result.stall_breakdown) == {
            "compute", "l1", "l2", "llc", "memory", "coherence", "writeback",
        }

    def test_cold_run_is_memory_bound(self, rng):
        result = System(BaselineLLC()).run(make_trace(rng, 1024, repeats=1, gap=4))
        bd = result.stall_breakdown
        assert bd["memory"] == max(bd.values())

    def test_compute_bound_with_huge_gaps(self, rng):
        result = System(BaselineLLC()).run(make_trace(rng, 64, repeats=2, gap=2000))
        bd = result.stall_breakdown
        assert bd["compute"] == max(bd.values())

    def test_compute_matches_instruction_count(self, rng):
        trace = make_trace(rng, 64, gap=8)
        result = System(BaselineLLC()).run(trace)
        expected = sum(int(g) for g in trace.gaps) / 4.0
        assert result.stall_breakdown["compute"] == pytest.approx(expected)

    def test_memory_component_zero_when_everything_fits_l1(self, rng):
        trace = make_trace(rng, 8, repeats=4)  # 8 KB fits the 16 KB L1s
        result = System(BaselineLLC()).run(trace)
        bd = result.stall_breakdown
        # After the cold pass, no more memory stalls accumulate; the
        # cold pass itself is bounded by the footprint.
        assert bd["memory"] < result.cycles * 4
