"""Tests for trace records, regions, builder and synthetic patterns."""

import numpy as np
import pytest

from repro.trace.record import DTYPE_INFO, DType, elements_per_block
from repro.trace.region import Region, RegionMap
from repro.trace.synth import (
    interleave_cores,
    interleave_streams,
    partition_blocks,
    random_pattern,
    sequential_pattern,
    strided_pattern,
    zipf_pattern,
)
from repro.trace.trace import TraceBuilder


class TestDTypes:
    def test_elements_per_block(self):
        assert elements_per_block(DType.F32) == 16
        assert elements_per_block(DType.U8) == 64
        assert elements_per_block(DType.F64) == 8
        assert elements_per_block(DType.I16) == 32

    def test_info_consistency(self):
        for dtype, info in DTYPE_INFO.items():
            assert info.numpy_dtype.itemsize * 8 == info.bits


class TestRegion:
    def test_basic_properties(self):
        r = Region("r", 0, 1024, DType.F32, approx=True, vmin=0, vmax=1)
        assert r.num_elements == 256
        assert r.num_blocks() == 16
        assert r.end == 1024

    def test_contains(self):
        r = Region("r", 100 * 64, 640, DType.F32, approx=True, vmin=0, vmax=1)
        assert r.contains(100 * 64)
        assert r.contains(100 * 64 + 639)
        assert not r.contains(100 * 64 + 640)

    def test_approx_needs_range(self):
        with pytest.raises(ValueError):
            Region("r", 0, 64, DType.F32, approx=True, vmin=1.0, vmax=1.0)

    def test_precise_needs_no_range(self):
        r = Region("r", 0, 64, DType.I32, approx=False)
        assert not r.approx

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Region("r", 0, 0, DType.F32)

    def test_block_addrs(self):
        r = Region("r", 128, 256, DType.F32, approx=True, vmin=0, vmax=1)
        assert list(r.block_addrs()) == [128, 192, 256, 320]


class TestRegionMap:
    def test_overlap_rejected(self):
        regions = RegionMap([Region("a", 0, 128, DType.F32)])
        with pytest.raises(ValueError, match="overlaps"):
            regions.add(Region("b", 64, 128, DType.F32))

    def test_find(self):
        regions = RegionMap(
            [
                Region("a", 0, 128, DType.F32),
                Region("b", 256, 128, DType.I32),
            ]
        )
        assert regions.find(300).name == "b"
        assert regions.find(200) is None
        assert regions.find_id(64) == 0
        assert regions.find_id(1 << 20) == -1

    def test_approx_fraction(self):
        regions = RegionMap(
            [
                Region("a", 0, 300 * 64, DType.F32, approx=True, vmin=0, vmax=1),
                Region("b", 64 * 1024, 100 * 64, DType.I32),
            ]
        )
        assert regions.approx_fraction() == pytest.approx(0.75)


class TestTraceBuilder:
    def test_register_block_values(self, small_region, rng):
        builder = TraceBuilder("t", RegionMap([small_region]))
        data = rng.uniform(0, 100, small_region.num_elements).astype(np.float32)
        ids = builder.register_block_values(small_region, data)
        assert len(ids) == small_region.num_blocks()
        trace = builder.build()
        assert trace.initial_image[small_region.base] == ids[0]
        np.testing.assert_array_equal(trace.block_values(int(ids[0])), data[:16])

    def test_append_and_iterate(self, small_trace):
        records = list(small_trace)
        assert len(records) == len(small_trace)
        first = records[0]
        assert first.addr == 0
        assert not first.is_write
        assert first.approx

    def test_instruction_count(self, small_trace):
        assert small_trace.instruction_count == len(small_trace) * 9  # gap 8 + op

    def test_footprint(self, small_trace, small_region):
        assert small_trace.footprint_bytes() == small_region.size

    def test_head(self, small_trace):
        sub = small_trace.head(10)
        assert len(sub) == 10
        assert sub.values is small_trace.values

    def test_write_fraction(self, small_trace):
        assert small_trace.write_fraction() == 0.0

    def test_mismatched_columns_rejected(self, small_region):
        builder = TraceBuilder("t", RegionMap([small_region]))
        with pytest.raises(ValueError):
            builder.append_batch(
                np.zeros(2, np.int8),
                np.zeros(3, np.int64),
                np.zeros(3, bool),
                np.zeros(3, bool),
                np.zeros(3, np.int32),
                np.zeros(3, np.int64),
                np.zeros(3, np.int32),
            )
            builder.build()


class TestPatterns:
    def test_sequential(self):
        pat = sequential_pattern(4, repeats=2)
        assert list(pat) == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_strided(self):
        pat = strided_pattern(8, stride=3, count=4)
        assert list(pat) == [0, 3, 6, 1]

    def test_random_in_range(self, rng):
        pat = random_pattern(16, 100, rng)
        assert pat.min() >= 0 and pat.max() < 16

    def test_zipf_skewed(self, rng):
        pat = zipf_pattern(1000, 5000, rng, alpha=1.5)
        counts = np.bincount(pat, minlength=1000)
        # The most popular block should be far above uniform.
        assert counts.max() > 3 * (5000 / 1000)

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            sequential_pattern(0)
        with pytest.raises(ValueError):
            zipf_pattern(10, 10, rng, alpha=0)


class TestInterleaving:
    def test_interleave_streams_round_robin(self):
        streams = [np.array([0, 1]), np.array([10, 11])]
        idx, cores = interleave_streams(streams)
        assert list(idx) == [0, 10, 1, 11]
        assert list(cores) == [0, 1, 0, 1]

    def test_uneven_streams(self):
        streams = [np.array([0, 1, 2]), np.array([10])]
        idx, cores = interleave_streams(streams)
        assert list(idx) == [0, 10, 1, 2]

    def test_partition_blocks_covers_all(self):
        parts = partition_blocks(10, 4)
        joined = np.concatenate(parts)
        assert sorted(joined) == list(range(10))

    def test_interleave_cores_modes(self):
        rr = interleave_cores(8, 4, "roundrobin")
        assert list(rr) == [0, 1, 2, 3, 0, 1, 2, 3]
        blk = interleave_cores(8, 4, "block")
        assert list(blk) == [0, 0, 1, 1, 2, 2, 3, 3]
        with pytest.raises(ValueError):
            interleave_cores(8, 4, "weird")
