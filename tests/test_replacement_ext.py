"""Tests for the sharing-aware replacement extension (future work)."""

import numpy as np
import pytest

from repro.core.config import DoppelgangerConfig
from repro.core.doppelganger import DoppelgangerCache
from repro.core.maps import MapConfig
from repro.core.replacement_ext import TagCountAwarePolicy, make_sharing_aware
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap

RID = 0


def make_cache(sharing_aware=True):
    regions = RegionMap(
        [Region("r", 0, 1 << 20, DType.F32, approx=True, vmin=0.0, vmax=100.0)]
    )
    cfg = DoppelgangerConfig(
        tag_entries=64, tag_ways=4, data_fraction=1 / 16, data_ways=4,
        map=MapConfig(14),
    )
    cache = DoppelgangerCache(cfg, regions=regions)
    if sharing_aware:
        make_sharing_aware(cache)
    return cache


def block(value):
    return np.full(16, float(value))


class TestPolicyUnit:
    def test_least_shared_is_victim(self):
        counts = {0: 3, 1: 1, 2: 5, 3: 2}
        policy = TagCountAwarePolicy(4, lambda w: counts[w])
        for way in range(4):
            policy.on_fill(way)
        assert policy.victim() == 1

    def test_lru_breaks_ties(self):
        policy = TagCountAwarePolicy(4, lambda w: 1)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_access(0)
        assert policy.victim() == 1


class TestIntegration:
    def test_shared_entry_protected(self):
        """A 3-tag entry survives eviction that LRU would inflict."""
        cache = make_cache(sharing_aware=True)
        # One data entry shared by three tags, inserted FIRST (LRU
        # victim under plain LRU)...
        for i in range(3):
            cache.insert(i * 64, RID, block(42.0))
        # ...then three single-tag entries.
        for i, v in enumerate([10.0, 20.0, 30.0]):
            cache.insert((10 + i) * 64, RID, block(v))
        # The set is full; a new map must evict. Plain LRU would pick
        # the shared 42.0 entry; sharing-aware picks a singleton.
        cache.insert(0x800, RID, block(90.0))
        assert cache.lookup(0).hit  # the shared entry survived
        cache.check_invariants()

    def test_plain_lru_evicts_shared(self):
        cache = make_cache(sharing_aware=False)
        for i in range(3):
            cache.insert(i * 64, RID, block(42.0))
        for i, v in enumerate([10.0, 20.0, 30.0]):
            cache.insert((10 + i) * 64, RID, block(v))
        cache.insert(0x800, RID, block(90.0))
        assert not cache.lookup(0).hit  # LRU sacrificed the shared one

    def test_invariants_under_pressure(self, rng):
        cache = make_cache(sharing_aware=True)
        for i in range(120):
            addr = int(rng.integers(0, 64)) * 64
            if cache.tags.probe(addr) is None:
                cache.insert(addr, RID, rng.uniform(0, 100, 16))
            else:
                cache.writeback(addr, RID, rng.uniform(0, 100, 16))
        cache.check_invariants()
