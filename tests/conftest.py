"""Shared fixtures for the test suite.

Workload fixtures use tiny scales so the full suite stays fast; the
benchmark harness exercises full-size datasets.
"""

import numpy as np
import pytest

from repro.trace.record import DType
from repro.trace.region import Region, RegionMap
from repro.trace.trace import TraceBuilder


@pytest.fixture(autouse=True)
def _isolated_history_store(tmp_path, monkeypatch):
    """Point the run-history store at a per-test path.

    CLI recording is on by default, so tests invoking ``main([...])``
    without ``--json-out`` would otherwise write
    ``results/json/history.db`` into the repo tree. Tests that care
    about path resolution delete ``REPRO_STORE`` themselves.
    """
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "history.db"))


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_region():
    """A 16 KB approximate float region starting at 0."""
    return Region("data", 0, 16 * 1024, DType.F32, approx=True, vmin=0.0, vmax=100.0)


@pytest.fixture
def small_trace(rng, small_region):
    """A small single-region trace: two sequential scans, 4 cores."""
    regions = RegionMap([small_region])
    builder = TraceBuilder("test", regions)
    data = rng.uniform(0.0, 100.0, small_region.num_elements).astype(np.float32)
    builder.register_block_values(small_region, data)
    n_blocks = small_region.num_blocks()
    indices = np.tile(np.arange(n_blocks, dtype=np.int64), 2)
    cores = (np.arange(len(indices)) % 4).astype(np.int8)
    builder.append_region_accesses(0, indices, cores, is_write=False, gap=8)
    return builder.build()


def make_blocks(rng, n, elems=16, lo=0.0, hi=100.0):
    """Random float blocks helper."""
    return rng.uniform(lo, hi, size=(n, elems))
