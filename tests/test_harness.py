"""Tests for the experiment harness: reporting, runner, drivers."""

import os

import pytest

from repro.harness.reporting import Table, arithmetic_mean, geometric_mean
from repro.harness.runner import (
    ConfigSpec,
    ExperimentContext,
    baseline_spec,
    dopp_spec,
    uni_spec,
)
from repro.harness import experiments


class TestTable:
    def test_render_contains_everything(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("a", 1.5)
        table.add_row("b", None)
        text = table.render()
        assert "Demo" in text
        assert "1.500" in text
        assert "-" in text

    def test_row_length_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_and_row_map(self):
        table = Table("t", ["name", "x"])
        table.add_row("w", 2.0)
        assert table.column("x") == [2.0]
        assert table.row_map()["w"] == ["w", 2.0]

    def test_save(self, tmp_path):
        table = Table("My Table", ["a"])
        table.add_row(1)
        path = table.save(directory=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as fh:
            assert "My Table" in fh.read()

    def test_notes_rendered(self):
        table = Table("t", ["a"])
        table.add_note("paper says 42")
        assert "paper says 42" in table.render()


class TestMeans:
    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_skips_none(self):
        assert arithmetic_mean([1.0, None, 3.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0
        assert arithmetic_mean([]) == 0.0


class TestConfigSpec:
    def test_labels(self):
        assert baseline_spec().label() == "baseline-2MB"
        assert dopp_spec(14, 0.25).label() == "dopp-14bit-1/4"
        assert uni_spec(14, 0.75).label() == "uni-14bit-3/4"

    def test_build_llc_kinds(self):
        assert baseline_spec().build_llc(None).name == "baseline"
        assert dopp_spec().build_llc(None).name == "doppelganger"
        assert uni_spec().build_llc(None).name == "unidoppelganger"
        with pytest.raises(ValueError):
            ConfigSpec("weird").build_llc(None)

    def test_approximator_sizes(self):
        assert baseline_spec().approximator() is None
        assert dopp_spec(14, 0.25).approximator().store.data_entries == 4096
        assert uni_spec(14, 0.5).approximator().store.data_entries == 16384

    def test_spec_hashable_for_memoization(self):
        assert dopp_spec(14, 0.25) == dopp_spec(14, 0.25)
        assert len({dopp_spec(14, 0.25), dopp_spec(14, 0.5)}) == 2


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=3, scale=0.05, workloads=["kmeans", "swaptions"])


class TestExperimentContext:
    def test_run_memoized(self, ctx):
        a = ctx.run("kmeans", baseline_spec())
        b = ctx.run("kmeans", baseline_spec())
        assert a is b

    def test_normalized_runtime_baseline_is_one(self, ctx):
        assert ctx.normalized_runtime("kmeans", baseline_spec()) == pytest.approx(1.0)

    def test_error_baseline_zero(self, ctx):
        assert ctx.error("kmeans", baseline_spec()) == 0.0

    def test_error_memoized(self, ctx):
        spec = dopp_spec(14, 0.25)
        assert ctx.error("kmeans", spec) == ctx.error("kmeans", spec)

    def test_reductions_positive(self, ctx):
        spec = dopp_spec(14, 0.25)
        assert ctx.dynamic_energy_reduction("kmeans", spec) > 0
        assert ctx.leakage_energy_reduction("kmeans", spec) > 0
        assert ctx.normalized_traffic("kmeans", spec) > 0


class TestDrivers:
    """Smoke tests: every driver produces a complete table."""

    def test_fig02(self, ctx):
        table = experiments.fig02_threshold_similarity(ctx)
        assert len(table.rows) == 2
        assert len(table.headers) == 6

    def test_table2(self, ctx):
        table = experiments.table2_approx_footprint(ctx)
        values = {row[0]: row[1] for row in table.rows}
        assert 0 <= values["kmeans"] <= 100

    def test_fig07(self, ctx):
        table = experiments.fig07_map_space_savings(ctx)
        assert table.rows[-1][0] == "mean"

    def test_fig08(self, ctx):
        table = experiments.fig08_compression_comparison(ctx)
        for row in table.rows:
            for cell in row[1:]:
                assert -0.01 <= cell <= 1.0

    def test_fig09(self, ctx):
        tables = experiments.fig09_map_space(ctx)
        assert set(tables) == {"error", "runtime"}
        assert tables["runtime"].rows[-1][0] == "geomean"

    def test_fig10(self, ctx):
        tables = experiments.fig10_data_array(ctx)
        assert set(tables) == {"error", "runtime", "stats"}

    def test_fig11(self, ctx):
        tables = experiments.fig11_energy_reduction(ctx)
        for row in tables["dynamic"].rows:
            assert all(v > 0 for v in row[1:])

    def test_fig12(self, ctx):
        table = experiments.fig12_offchip_traffic(ctx)
        assert all(row[1] > 0 for row in table.rows)

    def test_fig13_config_only(self):
        table = experiments.fig13_area_reduction()
        assert len(table.rows) == 6
        reductions = table.column("reduction x")
        assert reductions[0] < reductions[1] < reductions[2]

    def test_fig14(self, ctx):
        tables = experiments.fig14_unidoppelganger(ctx)
        assert set(tables) == {"error", "runtime", "dynamic"}

    def test_table3(self):
        table = experiments.table3_hardware_cost()
        assert len(table.rows) == 6
        sizes = dict(zip(table.column("structure"), table.column("size KB")))
        assert sizes["baseline_llc"] == pytest.approx(2156.0)

    def test_headline(self, ctx):
        table = experiments.summary_headline(ctx)
        assert len(table.rows) == 4
