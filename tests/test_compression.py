"""Tests for BΔI compression and exact deduplication."""

import numpy as np
import pytest

from repro.compression.bdi import BDICompressor, BLOCK_BYTES, bdi_compressed_size
from repro.compression.dedup import DedupCache, dedup_storage_savings


class TestBDISpecialCases:
    def test_zero_block(self):
        enc = bdi_compressed_size(np.zeros(16, dtype=np.int32))
        assert enc.name == "zeros"
        assert enc.compressed_bytes == 1

    def test_repeated_value(self):
        block = np.full(8, 0x1234567890, dtype=np.int64)
        enc = bdi_compressed_size(block)
        assert enc.name == "repeat"
        assert enc.compressed_bytes == 8

    def test_repeat_requires_8_byte_period(self):
        block = np.full(16, 7, dtype=np.int32)  # 4-byte period = 8-byte period too
        enc = bdi_compressed_size(block)
        assert enc.name == "repeat"


class TestBDIEncodings:
    def test_small_deltas_compress(self):
        base = 1_000_000
        block = (base + np.arange(16)).astype(np.int32)
        enc = bdi_compressed_size(block)
        assert enc.compressed_bytes < BLOCK_BYTES
        assert "delta1" in enc.name

    def test_medium_deltas_use_wider_field(self):
        base = 1_000_000
        block = (base + np.arange(16) * 1000).astype(np.int32)
        enc = bdi_compressed_size(block)
        assert enc.compressed_bytes < BLOCK_BYTES

    def test_random_floats_do_not_compress(self, rng):
        block = rng.uniform(-1e9, 1e9, 8)  # f64, wild mantissas
        enc = bdi_compressed_size(block)
        assert enc.name == "uncompressed"
        assert enc.compressed_bytes == BLOCK_BYTES

    def test_mixed_immediates_and_base(self):
        # Half small values (zero base), half clustered (explicit base).
        block = np.array([3, 5, 1, 2, 900000, 900004, 900002, 900001] * 2, dtype=np.int32)
        enc = bdi_compressed_size(block)
        assert enc.compressed_bytes < BLOCK_BYTES

    def test_saved_bytes(self):
        enc = bdi_compressed_size(np.zeros(16, dtype=np.int32))
        assert enc.saved_bytes == BLOCK_BYTES - 1

    def test_grid_coordinates_compress(self, rng):
        # canneal-like: i32 coordinates within a 256-wide macro window.
        base = rng.integers(0, 4096 - 256)
        block = (base + rng.integers(0, 256, 16)).astype(np.int32)
        enc = bdi_compressed_size(block)
        assert enc.compressed_bytes < BLOCK_BYTES


class TestBDICompressor:
    def test_storage_savings_zero_blocks(self):
        comp = BDICompressor()
        assert comp.storage_savings([]) == 0.0

    def test_storage_savings_all_zero(self):
        comp = BDICompressor()
        blocks = [np.zeros(16, dtype=np.int32)] * 4
        assert comp.storage_savings(blocks) == pytest.approx(1 - 1 / 64)

    def test_histogram_populated(self):
        comp = BDICompressor()
        comp.compress_block(np.zeros(16, dtype=np.int32))
        assert comp.encoding_counts["zeros"] == 1


class TestDedup:
    def test_no_duplicates_no_savings(self, rng):
        blocks = [rng.uniform(0, 1, 16) for _ in range(10)]
        assert dedup_storage_savings(blocks) == 0.0

    def test_all_identical(self):
        block = np.full(16, 3.0)
        assert dedup_storage_savings([block] * 4) == pytest.approx(0.75)

    def test_float_nearly_equal_not_deduped(self):
        a = np.full(16, 3.0)
        b = a + 1e-7
        assert dedup_storage_savings([a, b]) == 0.0

    def test_empty(self):
        assert dedup_storage_savings([]) == 0.0


class TestDedupCache:
    def test_hit_on_identical(self):
        cache = DedupCache(64, 4)
        block = np.full(16, 1.0)
        assert not cache.access(block)
        assert cache.access(block.copy())
        assert cache.stats.dedup_rate == 0.5

    def test_eviction_bounded(self, rng):
        cache = DedupCache(16, 4)
        for i in range(200):
            cache.access(rng.uniform(0, 1, 16))
        assert cache.occupancy() <= 16

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            DedupCache(10, 4)
