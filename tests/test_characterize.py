"""Tests for the workload characterization tool."""

import numpy as np
import pytest

from repro.analysis.characterize import (
    Characterization,
    characterize_snapshot,
    characterize_workload,
)
from repro.analysis.storage import LLCSnapshot
from repro.trace.record import DType
from repro.trace.region import Region
from repro.workloads import get_workload


def region(vmin=0.0, vmax=100.0):
    return Region("r", 0, 1 << 16, DType.F32, approx=True, vmin=vmin, vmax=vmax)


def snapshot_of(blocks):
    snap = LLCSnapshot()
    reg = region()
    for b in blocks:
        snap.add(0, reg, b)
    return snap


class TestUniqueCurve:
    def test_monotone_in_bits(self, rng):
        snap = snapshot_of(rng.uniform(0, 100, (400, 16)))
        ch = characterize_snapshot(snap)
        uniques = [ch.unique_curve[b][0] for b in sorted(ch.unique_curve)]
        assert all(a <= b for a, b in zip(uniques, uniques[1:]))

    def test_savings_complementary(self, rng):
        snap = snapshot_of(rng.uniform(0, 100, (200, 16)))
        ch = characterize_snapshot(snap)
        for bits, (unique, total) in ch.unique_curve.items():
            assert ch.savings_at(bits) == pytest.approx(1 - unique / total)

    def test_identical_blocks_one_map(self):
        snap = snapshot_of([np.full(16, 42.0)] * 20)
        ch = characterize_snapshot(snap)
        for bits in ch.unique_curve:
            assert ch.unique_curve[bits][0] == 1
        assert ch.avg_tags_per_map() == 20.0


class TestBitsRecommendation:
    def test_max_bits_for_entries(self, rng):
        snap = snapshot_of(rng.uniform(0, 100, (500, 16)))
        ch = characterize_snapshot(snap)
        # Huge array: finest surveyed M fits.
        assert ch.max_bits_for_entries(10_000) == max(ch.unique_curve)
        # Tiny array: nothing fits.
        assert ch.max_bits_for_entries(0) is None

    def test_fit_is_consistent(self, rng):
        snap = snapshot_of(rng.uniform(40, 60, (500, 16)))
        ch = characterize_snapshot(snap)
        entries = 64
        bits = ch.max_bits_for_entries(entries)
        if bits is not None:
            assert ch.unique_curve[bits][0] <= entries


class TestRegionProfiles:
    def test_profile_statistics(self):
        blocks = [np.full(16, 10.0), np.full(16, 30.0)]
        snap = snapshot_of(blocks)
        ch = characterize_snapshot(snap)
        profile = ch.regions[0]
        assert profile.blocks == 2
        assert profile.avg_mean == pytest.approx(20.0)
        assert profile.range_mean == pytest.approx(0.0)
        assert 0.0 <= profile.avg_concentration <= 1.0


class TestWorkloadEntry:
    def test_characterize_real_workload(self):
        w = get_workload("kmeans", seed=2, scale=0.05)
        ch = characterize_workload(w, bits_sweep=(10, 14))
        assert ch.workload == "kmeans"
        assert set(ch.unique_curve) == {10, 14}
        assert ch.avg_tags_per_map() >= 1.0

    def test_table_rendering(self):
        w = get_workload("swaptions", seed=2, scale=0.05)
        ch = characterize_workload(w, bits_sweep=(12, 14))
        text = ch.to_table().render()
        assert "swaptions" in text
        assert "avg tags per occupied map" in text


class TestSharingHistogram:
    def test_histogram_accounts_all_blocks(self, rng):
        snap = snapshot_of(rng.uniform(0, 100, (300, 16)))
        ch = characterize_snapshot(snap)
        blocks = sum(k * v for k, v in ch.sharing_histogram.items())
        assert blocks == 300
