"""Tests for phase profiling (repro.obs.profiling)."""

from repro.obs.events import RingBufferSink, Tracer
from repro.obs.profiling import PhaseProfiler


class TestPhaseProfiler:
    def test_phase_accumulates(self):
        prof = PhaseProfiler()
        with prof.phase("sim"):
            pass
        with prof.phase("sim"):
            pass
        stat = prof.phases["sim"]
        assert stat.count == 2
        assert stat.total_ns > 0

    def test_disabled_records_nothing(self):
        prof = PhaseProfiler(enabled=False)
        with prof.phase("sim"):
            pass
        assert prof.phases == {}
        assert "no phases" in prof.render()

    def test_phase_records_on_exception(self):
        prof = PhaseProfiler()
        try:
            with prof.phase("boom"):
                raise ValueError
        except ValueError:
            pass
        assert prof.phases["boom"].count == 1

    def test_by_stage_rolls_up_leaves(self):
        prof = PhaseProfiler()
        with prof.phase("sim/canneal/baseline"):
            pass
        with prof.phase("sim/jpeg/baseline"):
            pass
        with prof.phase("trace/canneal"):
            pass
        stages = prof.by_stage()
        assert set(stages) == {"sim", "trace"}
        assert stages["sim"] > 0

    def test_by_stage_skips_parent_of_nested_phase(self):
        prof = PhaseProfiler()
        with prof.phase("sim/canneal"):
            with prof.phase("sim/canneal/inner"):
                pass
        # Only the leaf counts; the enclosing phase would double-count.
        stages = prof.by_stage()
        assert stages["sim"] <= prof.phases["sim/canneal"].seconds

    def test_render_lists_phases(self):
        prof = PhaseProfiler()
        with prof.phase("sim/canneal/baseline"):
            pass
        text = prof.render()
        assert "sim/canneal/baseline" in text
        assert "phase profile" in text

    def test_report_is_json_friendly(self):
        import json

        prof = PhaseProfiler()
        with prof.phase("sim"):
            pass
        report = prof.report()
        json.dumps(report)
        assert report["phases"]["sim"]["count"] == 1
        assert "sim" in report["stages"]

    def test_phase_event_emitted_to_tracer(self):
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink(8))
        prof = PhaseProfiler(tracer=tracer)
        with prof.phase("sim"):
            pass
        assert ring.counts_by_kind() == {"phase": 1}
        assert ring.events[0].fields["name"] == "sim"

    def test_merge(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        with a.phase("sim"):
            pass
        with b.phase("sim"):
            pass
        with b.phase("trace"):
            pass
        a.merge(b)
        assert a.phases["sim"].count == 2
        assert a.phases["trace"].count == 1

    def test_reset(self):
        prof = PhaseProfiler()
        with prof.phase("sim"):
            pass
        prof.reset()
        assert prof.phases == {}

    def test_total_seconds_counts_top_level_only(self):
        prof = PhaseProfiler()
        with prof.phase("outer"):
            with prof.phase("outer/inner"):
                pass
        assert prof.total_seconds() == prof.phases["outer"].seconds
