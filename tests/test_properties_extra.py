"""Additional property-based tests: data array, uniDoppelgänger, BΔI."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import UniDoppelgangerConfig
from repro.core.data_array import MTagDataArray
from repro.core.maps import MapConfig, MapGenerator
from repro.core.unidoppelganger import UniDoppelgangerCache
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap

RID = 0


# --------------------------------------------------------------- data array


@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
@settings(max_examples=50)
def test_data_array_probe_after_allocate(map_values):
    data = MTagDataArray(64, 4)
    resident = set()
    for mv in map_values:
        if data.probe(mv) is None:
            alloc = data.allocate(mv)
            resident.add(mv)
            if alloc.victim is not None:
                resident.discard(alloc.victim.map_value)
        assert data.probe(mv) is not None
    assert data.occupied <= 64
    for mv in resident:
        assert data.probe(mv) is not None


@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100))
@settings(max_examples=30)
def test_data_array_precise_and_approx_never_alias(map_values):
    data = MTagDataArray(64, 4)
    for mv in map_values:
        if data.probe(mv, precise=False) is None:
            data.allocate(mv, precise=False)
        entry = data.probe(mv, precise=False)
        if entry is not None:
            assert not entry.precise


# ----------------------------------------------------------- uniDoppelgänger

_uni_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert_a", "insert_p", "write_a", "write_p", "lookup"]),
        st.integers(0, 31),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    min_size=1,
    max_size=80,
)


@given(_uni_ops)
@settings(max_examples=40, deadline=None)
def test_unidoppelganger_invariants_random_mix(ops):
    regions = RegionMap(
        [Region("r", 0, 1 << 20, DType.F32, approx=True, vmin=0.0, vmax=100.0)]
    )
    cfg = UniDoppelgangerConfig(
        tag_entries=32, tag_ways=4, data_fraction=0.5, data_ways=4,
        map=MapConfig(10),
    )
    cache = UniDoppelgangerCache(cfg, regions=regions)
    for op, bid, value in ops:
        addr = bid * 64
        values = np.full(16, value)
        resident = cache.tags.probe(addr) is not None
        if op == "insert_a" and not resident:
            cache.insert_block(addr, True, region_id=RID, values=values)
        elif op == "insert_p" and not resident:
            cache.insert_block(addr, False)
        elif op == "write_a":
            entry = cache.tags.probe(addr)
            if entry is None or not entry.precise:
                cache.writeback_block(addr, True, region_id=RID, values=values)
        elif op == "write_p":
            entry = cache.tags.probe(addr)
            if entry is None or entry.precise:
                cache.writeback_block(addr, False)
        else:
            cache.lookup(addr)
    cache.check_invariants()
    # Precise entries are never shared.
    for entry in cache.data.resident():
        if entry.precise:
            assert cache.tags.list_length(entry.head) == 1


# ------------------------------------------------------------------- energy


@given(st.integers(6, 12))
@settings(max_examples=10)
def test_structure_size_accounting_additive(kb_exp):
    from repro.energy.structures import conventional_structure

    size = (1 << kb_exp) * 1024  # 64 KB .. 4 MB, power of two
    s = conventional_structure("x", size)
    assert s.data_kb == size / 1024
    assert s.total_kb > s.data_kb  # tags add overhead


# --------------------------------------------------------------------- maps


@given(
    st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
    st.floats(min_value=1e-3, max_value=1e5, allow_nan=False),
)
def test_map_translation_invariance_of_range_hash(offset, span):
    """The range hash depends only on spread, not position."""
    vmin, vmax = offset, offset + span
    gen = MapGenerator(MapConfig(14, use_average=False), vmin, vmax, DType.F32)
    base = np.linspace(vmin, vmin + span / 4, 16)
    shifted = base + span / 3
    shifted = np.clip(shifted, vmin, vmax)
    if shifted.max() - shifted.min() == base.max() - base.min():
        assert gen.compute(base) == gen.compute(shifted)
