"""Tests for the extended hash-function exploration (future work)."""

import numpy as np
import pytest

from repro.core.hashes import ExtendedMapGenerator, hash_names, savings_for_hashes
from repro.core.maps import MapConfig, MapGenerator
from repro.trace.record import DType


def blocks_of(*rows):
    return np.array(rows, dtype=np.float64)


class TestRegistry:
    def test_names(self):
        names = hash_names()
        for expected in ("average", "range", "min", "max", "median", "first",
                         "projection"):
            assert expected in names

    def test_unknown_hash_rejected(self):
        with pytest.raises(ValueError, match="unknown hash"):
            ExtendedMapGenerator(("sum",), 14, 0, 100)

    def test_empty_hashes_rejected(self):
        with pytest.raises(ValueError):
            ExtendedMapGenerator((), 14, 0, 100)


class TestEquivalenceWithPaperGenerator:
    def test_average_range_matches_mapgenerator(self, rng):
        ext = ExtendedMapGenerator(("average", "range"), 14, 0.0, 100.0)
        paper = MapGenerator(MapConfig(14), 0.0, 100.0, DType.F32)
        blocks = rng.uniform(0, 100, size=(300, 16))
        np.testing.assert_array_equal(
            ext.compute_batch(blocks), paper.compute_batch(blocks)
        )

    def test_total_bits_match(self):
        ext = ExtendedMapGenerator(("average", "range"), 14, 0.0, 100.0)
        assert ext.total_bits == 21


class TestHashBehaviour:
    def test_min_max_separate_shifted_blocks(self):
        gen = ExtendedMapGenerator(("min", "max"), 14, 0.0, 100.0)
        a = np.linspace(10, 20, 16)
        b = np.linspace(30, 40, 16)
        assert gen.compute(a) != gen.compute(b)

    def test_median_robust_to_single_outlier(self):
        gen = ExtendedMapGenerator(("median",), 14, 0.0, 100.0)
        a = np.full(16, 50.0)
        b = a.copy()
        b[3] = 99.0  # single outlier
        assert gen.compute(a) == gen.compute(b)

    def test_average_not_robust_to_single_outlier(self):
        gen = ExtendedMapGenerator(("average",), 14, 0.0, 100.0)
        a = np.full(16, 50.0)
        b = a.copy()
        b[3] = 99.0
        assert gen.compute(a) != gen.compute(b)

    def test_projection_deterministic(self, rng):
        gen1 = ExtendedMapGenerator(("projection",), 14, 0.0, 100.0)
        gen2 = ExtendedMapGenerator(("projection",), 14, 0.0, 100.0)
        block = rng.uniform(0, 100, 16)
        assert gen1.compute(block) == gen2.compute(block)

    def test_projection_discriminates_permutations(self):
        gen = ExtendedMapGenerator(("projection",), 14, 0.0, 100.0)
        a = np.arange(16, dtype=float) * 6.0
        b = a[::-1].copy()  # same avg/range/min/max, different order
        assert gen.compute(a) != gen.compute(b)

    def test_first_is_order_sensitive(self):
        gen = ExtendedMapGenerator(("first",), 14, 0.0, 100.0)
        a = np.array([10.0] + [50.0] * 15)
        b = np.array([90.0] + [50.0] * 15)
        assert gen.compute(a) != gen.compute(b)

    def test_maps_in_range(self, rng):
        for hashes in (("average",), ("min", "max", "median"),
                       ("average", "range", "projection")):
            gen = ExtendedMapGenerator(hashes, 12, 0.0, 10.0)
            blocks = rng.uniform(0, 10, size=(100, 8))
            maps = gen.compute_batch(blocks)
            assert maps.min() >= 0
            assert maps.max() < (1 << gen.total_bits)

    def test_integer_omit_rule(self):
        gen = ExtendedMapGenerator(("average", "range"), 14, 0, 255, DType.U8)
        assert gen.eff_bits == 8


class TestSavings:
    def test_more_hashes_never_more_savings(self, rng):
        blocks = rng.uniform(40, 60, size=(500, 16))
        one = savings_for_hashes(blocks, ("average",), 14, 0.0, 100.0)
        two = savings_for_hashes(blocks, ("average", "range"), 14, 0.0, 100.0)
        three = savings_for_hashes(
            blocks, ("average", "range", "projection"), 14, 0.0, 100.0
        )
        assert one >= two >= three

    def test_empty_blocks(self):
        assert savings_for_hashes(np.zeros((0, 16)), ("average",), 14, 0, 1) == 0.0
