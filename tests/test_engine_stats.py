"""Slow-path-fraction accounting (``system.engine_stats``).

ISSUE 5's contract: the batched engine publishes per-class batch and
fall-through tallies, the classes sum to the total access count, and
the fraction surfaces through ``RunRecord`` into the BENCH summaries.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import ExperimentContext, baseline_spec, dopp_spec, uni_spec
from repro.hierarchy.system import System, SystemConfig
from repro.workloads.registry import get_workload, workload_names

SEED = 3
SCALE = 0.05


@pytest.fixture(scope="module")
def traces():
    out = {}
    for name in workload_names():
        out[name] = get_workload(name, seed=SEED, scale=SCALE).build_trace()
    return out


def _engine_stats(trace, spec, engine, config=None):
    llc = spec.build_llc(trace.regions, 0.0625)
    system = System(llc, config=config or SystemConfig())
    system.run(trace, engine=engine)
    return system.engine_stats


@pytest.mark.parametrize("name", workload_names())
def test_classes_sum_to_accesses_baseline(traces, name):
    es = _engine_stats(traces[name], baseline_spec(), "batched")
    assert es["engine"] == "batched"
    assert es["accesses"] == len(traces[name])
    fast = sum(es["fast"].values())
    slow = sum(es["slow"].values())
    assert fast + slow == es["accesses"]
    assert es["slow_fraction"] == (slow / es["accesses"])


@pytest.mark.parametrize(
    "spec", [dopp_spec(14, 0.25), uni_spec(14, 0.5)], ids=["dopp", "uni"]
)
@pytest.mark.parametrize("name", ["canneal", "jpeg"])
def test_classes_sum_to_accesses_approx_llc(traces, name, spec):
    es = _engine_stats(traces[name], spec, "batched")
    assert sum(es["fast"].values()) + sum(es["slow"].values()) == es["accesses"]
    # Doppelgänger organizations retire double-misses through the
    # adapter protocol, not the raw-dict LLC path.
    assert es["fast"]["llc_read_hit"] == 0
    assert es["fast"]["mem_fill"] == 0


def test_slow_fraction_below_gate_on_table2(traces):
    """The ISSUE 5 acceptance gate: < 3% fall-through on table2."""
    total = slow = 0
    for name in workload_names():
        es = _engine_stats(traces[name], baseline_spec(), "batched")
        total += es["accesses"]
        slow += sum(es["slow"].values())
    assert total > 0
    assert slow / total < 0.03


def test_reference_engine_reports_interpreted(traces):
    es = _engine_stats(traces["jpeg"], baseline_spec(), "reference")
    assert es["engine"] == "reference"
    assert es["slow"] == {"interpreted": len(traces["jpeg"])}
    assert es["slow_fraction"] == 1.0


def test_delegated_config_is_marked(traces):
    # random replacement delegates wholesale to the reference loop.
    cfg = SystemConfig(policy="random")
    es = _engine_stats(traces["jpeg"], baseline_spec(), "batched", cfg)
    assert es["engine"] == "batched"
    assert es.get("delegated") is True
    assert es["slow_fraction"] == 1.0


def test_engine_stats_surface_in_records_and_summaries():
    ctx = ExperimentContext(seed=SEED, scale=SCALE, workloads=["jpeg"])
    rec = ctx.run("jpeg", baseline_spec())
    assert rec.engine_stats is not None
    assert rec.engine_stats["accesses"] == rec.accesses
    assert "engine_stats" in rec.to_dict()
    (row,) = ctx.run_summaries()
    assert row["slow_path_fraction"] == rec.engine_stats["slow_fraction"]
    assert row["engine_stats"] == rec.engine_stats


def test_engine_metrics_source_is_flat_and_lazy():
    from repro.obs import Observability

    obs = Observability()
    ctx = ExperimentContext(
        seed=SEED, scale=SCALE, workloads=["jpeg"], obs=obs
    )
    ctx.run("jpeg", baseline_spec())
    snap = obs.registry.collect()
    keys = [k for k in snap if ".engine." in k]
    assert any(k.endswith("engine.slow_fraction") for k in keys)
    assert any(k.endswith("engine.accesses") for k in keys)
