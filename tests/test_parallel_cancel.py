"""Cancellation tests for the parallel harness and the strategy driver.

Exercises the chain a serve-daemon ``DELETE /jobs/<id>`` rides:
:class:`~repro.harness.parallel.CancelToken` → the sweep's poll loop →
pool teardown → the typed :class:`~repro.errors.Cancelled` (exit code
130) → the history run's ``run_cancelled`` event.
"""

import os
import signal
import threading
import time

import pytest

from repro.errors import Cancelled
from repro.harness.parallel import (
    CancelToken,
    cancellation_signals,
    prefetch_runs,
)
from repro.harness.runner import ExperimentContext, dopp_spec
from repro.harness.strategy import run_strategies
from repro.obs.store import RunStore


class TestCancelToken:
    def test_first_reason_wins(self):
        token = CancelToken()
        assert not token.cancelled()
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled()
        assert token.reason == "first"

    def test_default_reason(self):
        token = CancelToken()
        token.cancel()
        assert token.cancelled()
        assert token.reason


class TestCancellationSignals:
    def test_sigint_sets_token_once(self):
        token = CancelToken()
        with cancellation_signals(token, signals=(signal.SIGINT,)):
            os.kill(os.getpid(), signal.SIGINT)
            for _ in range(100):
                if token.cancelled():
                    break
                time.sleep(0.01)
        assert token.cancelled()
        assert "SIGINT" in token.reason

    def test_handlers_restored(self):
        before = signal.getsignal(signal.SIGINT)
        with cancellation_signals(CancelToken(), signals=(signal.SIGINT,)):
            assert signal.getsignal(signal.SIGINT) is not before
        assert signal.getsignal(signal.SIGINT) is before

    def test_noop_off_main_thread(self):
        outcome = {}

        def run():
            token = CancelToken()
            before = signal.getsignal(signal.SIGINT)
            with cancellation_signals(token, signals=(signal.SIGINT,)):
                outcome["unchanged"] = signal.getsignal(signal.SIGINT) is before

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=10)
        assert outcome == {"unchanged": True}


class TestPrefetchCancel:
    def test_preset_token_raises_cancelled(self, small_scale_ctx):
        token = CancelToken()
        token.cancel("test cancel")
        with pytest.raises(Cancelled, match="test cancel"):
            prefetch_runs(
                small_scale_ctx, [], 2, run_specs=[dopp_spec()], cancel=token
            )

    def test_mid_sweep_cancel_keeps_completed(self, small_scale_ctx):
        token = CancelToken()
        timer = threading.Timer(0.2, token.cancel, args=("mid-sweep",))
        timer.start()
        try:
            with pytest.raises(Cancelled, match="mid-sweep"):
                prefetch_runs(
                    small_scale_ctx,
                    [],
                    2,
                    run_specs=[dopp_spec()],
                    cancel=token,
                )
        finally:
            timer.cancel()

    def test_uncancelled_sweep_completes(self, small_scale_ctx):
        fetched = prefetch_runs(
            small_scale_ctx,
            [],
            2,
            run_specs=[dopp_spec()],
            cancel=CancelToken(),
        )
        assert fetched == 2


@pytest.fixture
def small_scale_ctx():
    """A tiny context for fast parallel sweeps."""
    return ExperimentContext(seed=3, scale=0.05, workloads=["swaptions", "kmeans"])


class TestRunStrategiesCancel:
    def test_cancel_before_strategies_raises(self, tmp_path):
        token = CancelToken()
        token.cancel("pre-cancelled")
        with pytest.raises(Cancelled, match="pre-cancelled"):
            run_strategies(
                ["table2"],
                seed=3,
                scale=0.05,
                workloads=["swaptions"],
                cancel=token,
            )

    def test_cancelled_run_journals_partial_history(self, tmp_path):
        store_path = str(tmp_path / "history.db")
        token = CancelToken()
        token.cancel("client asked")
        with pytest.raises(Cancelled) as excinfo:
            run_strategies(
                ["table2"],
                seed=3,
                scale=0.05,
                workloads=["swaptions"],
                store_path=store_path,
                record_history=True,
                argv=["test"],
                cancel=token,
            )
        run_id = excinfo.value.run_id
        assert run_id is not None

        store = RunStore(store_path)
        runs = {r["id"]: r for r in store.list_runs()}
        assert runs[run_id]["finished"] == 0
        events = store.events_for(run_id)
        cancelled = [e for e in events if e["kind"] == "run_cancelled"]
        assert len(cancelled) == 1
        assert "client asked" in cancelled[0]["reason"]
        store.close()

    def test_exit_code(self):
        assert Cancelled("x").exit_code == 130
