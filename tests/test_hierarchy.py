"""Tests for the DRAM model, LLC adapters and the full system."""

import numpy as np
import pytest

from repro.core.config import DoppelgangerConfig
from repro.core.maps import MapConfig
from repro.hierarchy.dram import MainMemory
from repro.hierarchy.llc import BaselineLLC, SplitDoppelgangerLLC, UnifiedDoppelgangerLLC
from repro.hierarchy.system import System, SystemConfig
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap
from repro.trace.trace import TraceBuilder


def make_trace(rng, size_kb=64, repeats=2, write=False, gap=8):
    region = Region(
        "r", 0, size_kb * 1024, DType.F32, approx=True, vmin=0.0, vmax=100.0
    )
    regions = RegionMap([region])
    builder = TraceBuilder("t", regions)
    data = rng.uniform(0, 100, region.num_elements).astype(np.float32)
    vids = builder.register_block_values(region, data)
    n = region.num_blocks()
    idx = np.tile(np.arange(n, dtype=np.int64), repeats)
    cores = (np.arange(len(idx)) % 4).astype(np.int8)
    builder.append_region_accesses(
        0, idx, cores, is_write=write,
        value_ids=vids[idx] if write else None, gap=gap,
    )
    return builder.build()


class TestMainMemory:
    def test_counters(self):
        mem = MainMemory(latency=100)
        assert mem.read(0) == 100
        assert mem.write(64) == 100
        assert mem.total_accesses == 2
        assert mem.traffic_bytes == 128

    def test_reset(self):
        mem = MainMemory()
        mem.read(0)
        mem.reset()
        assert mem.total_accesses == 0

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            MainMemory(latency=0)


class TestBaselineLLC:
    def test_read_does_not_fill(self):
        llc = BaselineLLC()
        assert not llc.read(0, 0, False, -1).hit
        assert not llc.read(0, 0, False, -1).hit  # still a miss

    def test_fill_then_hit(self):
        llc = BaselineLLC()
        llc.fill(0, 0, False, -1)
        assert llc.read(0, 0, False, -1).hit

    def test_miss_not_double_counted(self):
        llc = BaselineLLC()
        llc.read(0, 0, False, -1)
        llc.fill(0, 0, False, -1)
        assert llc.miss_count() == 1

    def test_writeback_to_resident(self):
        llc = BaselineLLC()
        llc.fill(0, 0, False, -1)
        reply = llc.handle_writeback(0, 0, False, -1, value_id=5)
        assert reply.hit
        assert llc.cache.probe(0).dirty

    def test_writeback_to_absent_goes_to_memory(self):
        llc = BaselineLLC()
        reply = llc.handle_writeback(0, 0, False, -1)
        assert not reply.hit
        assert reply.writebacks == (0,)

    def test_eviction_reports_back_invalidation(self):
        llc = BaselineLLC(size_bytes=2 * 64 * 16, ways=2)  # 16 sets x 2 ways
        stride = llc.cache.num_sets * 64
        llc.fill(0, 0, False, -1)
        llc.fill(stride, 0, False, -1)
        reply = llc.fill(2 * stride, 0, False, -1)
        assert reply.back_invalidations == (0,)


def split_llc(regions):
    return SplitDoppelgangerLLC(DoppelgangerConfig(map=MapConfig(14)), regions=regions)


class TestSplitLLC:
    def make(self):
        regions = RegionMap(
            [
                Region("a", 0, 1 << 20, DType.F32, approx=True, vmin=0, vmax=100),
                Region("p", 1 << 21, 1 << 20, DType.I32, approx=False),
            ]
        )
        return split_llc(regions), regions

    def test_routing_by_approx_flag(self):
        llc, regions = self.make()
        llc.fill(0, 0, True, 0, values=np.full(16, 5.0))
        llc.fill(1 << 21, 0, False, 1)
        assert llc.dopp.stats.insertions == 1
        assert llc.precise.occupancy() == 1

    def test_approx_fill_requires_values(self):
        llc, _ = self.make()
        with pytest.raises(ValueError):
            llc.fill(0, 0, True, 0)

    def test_approx_read_hits_after_fill(self):
        llc, _ = self.make()
        llc.fill(0, 0, True, 0, values=np.full(16, 5.0))
        assert llc.read(0, 0, True, 0).hit

    def test_writeback_walks_dopp_path(self):
        llc, _ = self.make()
        llc.fill(0, 0, True, 0, values=np.full(16, 5.0))
        llc.handle_writeback(0, 0, True, 0, values=np.full(16, 95.0))
        assert llc.dopp.stats.write_moved == 1

    def test_energy_events_keys(self):
        llc, _ = self.make()
        events = llc.energy_events()
        assert ("precise_1mb", "tag") in events
        assert ("dopp_tag", "tag") in events
        assert ("map_generation", "op") in events


class TestUnifiedLLC:
    def make(self):
        regions = RegionMap(
            [Region("a", 0, 1 << 20, DType.F32, approx=True, vmin=0, vmax=100)]
        )
        return UnifiedDoppelgangerLLC(regions=regions)

    def test_fill_and_read_both_kinds(self):
        llc = self.make()
        llc.fill(0, 0, True, 0, values=np.full(16, 5.0))
        llc.fill(1 << 21, 0, False, -1)
        assert llc.read(0, 0, True, 0).hit
        assert llc.read(1 << 21, 0, False, -1).hit

    def test_writeback_precise(self):
        llc = self.make()
        llc.fill(1 << 21, 0, False, -1)
        reply = llc.handle_writeback(1 << 21, 0, False, -1, value_id=3)
        assert reply.hit


class TestSystem:
    def test_baseline_end_to_end(self, rng):
        trace = make_trace(rng)
        system = System(BaselineLLC())
        result = system.run(trace)
        assert result.cycles > 0
        assert result.instructions == trace.instruction_count
        # First scan misses, second scan hits somewhere in the hierarchy.
        assert result.dram_reads == trace.unique_blocks()

    def test_llc_reuse_on_second_scan(self, rng):
        # Footprint bigger than L2 (512KB > 4 x 128KB? per-core partition
        # 128KB == L2) -> use 1MB so per-core partitions exceed L2.
        trace = make_trace(rng, size_kb=1024, repeats=2)
        system = System(BaselineLLC())
        result = system.run(trace)
        assert result.llc_misses < 2 * trace.unique_blocks()

    def test_write_trace_generates_writebacks(self, rng):
        # Footprint beyond the 2 MB LLC so dirty blocks reach memory.
        trace = make_trace(rng, size_kb=4096, repeats=2, write=True)
        system = System(BaselineLLC())
        result = system.run(trace)
        assert result.dram_writes > 0

    def test_split_dopp_system(self, rng):
        trace = make_trace(rng, size_kb=256, repeats=3)
        llc = split_llc(trace.regions)
        system = System(llc)
        result = system.run(trace)
        assert result.cycles > 0
        llc.dopp.check_invariants()

    def test_unified_system(self, rng):
        trace = make_trace(rng, size_kb=256, repeats=3)
        llc = UnifiedDoppelgangerLLC(regions=trace.regions)
        system = System(llc)
        result = system.run(trace)
        assert result.cycles > 0
        llc.uni.check_invariants()

    def test_limit_argument(self, rng):
        trace = make_trace(rng)
        system = System(BaselineLLC())
        result = system.run(trace, limit=10)
        assert result.instructions == sum(g + 1 for g in trace.gaps[:10])

    def test_mpki_definition(self, rng):
        trace = make_trace(rng)
        system = System(BaselineLLC())
        result = system.run(trace)
        assert result.mpki == pytest.approx(
            1000.0 * result.llc_misses / result.instructions
        )

    def test_store_coherence_invalidates_sharers(self):
        # Two cores read the same block, then core 1 writes it.
        region = Region("r", 0, 4096, DType.F32, approx=True, vmin=0, vmax=1)
        regions = RegionMap([region])
        builder = TraceBuilder("t", regions)
        data = np.zeros(region.num_elements, dtype=np.float32)
        vids = builder.register_block_values(region, data)
        for core, write in ((0, False), (1, False), (1, True)):
            builder.append_region_accesses(
                0, np.array([0]), np.array([core], dtype=np.int8),
                is_write=write, value_ids=np.array([vids[0]]), gap=4,
            )
        trace = builder.build()
        system = System(BaselineLLC())
        system.run(trace)
        assert system.coherence_invalidations >= 1
        assert not system.l1s[0].contains(0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)
        with pytest.raises(ValueError):
            SystemConfig(issue_width=0)
