"""Integration: every workload's trace through every LLC organization.

Runs each benchmark's (small-scale) trace through the baseline, split
Doppelgänger and uniDoppelgänger systems, checking structural
invariants, conservation properties and cross-organization sanity.
"""

import numpy as np
import pytest

from repro.core.config import DoppelgangerConfig, UniDoppelgangerConfig
from repro.core.maps import MapConfig
from repro.hierarchy.llc import BaselineLLC, SplitDoppelgangerLLC, UnifiedDoppelgangerLLC
from repro.hierarchy.system import System, SystemConfig
from repro.workloads import workload_names, get_workload

SCALE = 0.08
LIMIT = 30_000  # accesses per run: keep the matrix fast

SMALL_SYS = SystemConfig(l2_bytes=32 * 1024)


def small_dopp_llc(regions):
    return SplitDoppelgangerLLC(
        DoppelgangerConfig(tag_entries=2048, data_fraction=0.25, map=MapConfig(14)),
        precise_bytes=128 * 1024,
        regions=regions,
    )


def small_uni_llc(regions):
    return UnifiedDoppelgangerLLC(
        UniDoppelgangerConfig(tag_entries=4096, data_fraction=0.5, map=MapConfig(14)),
        regions=regions,
    )


@pytest.fixture(scope="module")
def traces():
    return {
        name: get_workload(name, seed=9, scale=SCALE).build_trace()
        for name in workload_names()
    }


@pytest.mark.parametrize("name", workload_names())
class TestAllWorkloadsAllLLCs:
    def test_baseline_runs(self, traces, name):
        trace = traces[name]
        llc = BaselineLLC(size_bytes=256 * 1024, regions=trace.regions)
        result = System(llc, config=SMALL_SYS).run(trace, limit=LIMIT)
        assert result.cycles > 0
        # Conservation: every DRAM read corresponds to an LLC fill.
        assert result.dram_reads == llc.cache.stats.fills

    def test_doppelganger_invariants(self, traces, name):
        trace = traces[name]
        llc = small_dopp_llc(trace.regions)
        result = System(llc, config=SMALL_SYS).run(trace, limit=LIMIT)
        llc.dopp.check_invariants()
        d = llc.dopp.stats
        # Conservation: hits + misses = accesses.
        assert d.hits + d.misses == d.accesses
        # Every data entry freed/evicted had its tags accounted.
        assert d.tag_evictions == d.dirty_tags_evicted + d.clean_tags_evicted

    def test_unidoppelganger_invariants(self, traces, name):
        trace = traces[name]
        llc = small_uni_llc(trace.regions)
        System(llc, config=SMALL_SYS).run(trace, limit=LIMIT)
        llc.uni.check_invariants()
        # Precise and approximate entries coexist for mixed workloads.
        if any(not r.approx for r in trace.regions) and any(
            r.approx for r in trace.regions
        ):
            assert llc.uni.precise_occupancy() >= 0

    def test_traffic_sane_across_organizations(self, traces, name):
        trace = traces[name]
        base = System(
            BaselineLLC(size_bytes=256 * 1024, regions=trace.regions),
            config=SMALL_SYS,
        ).run(trace, limit=LIMIT)
        dopp = System(small_dopp_llc(trace.regions), config=SMALL_SYS).run(
            trace, limit=LIMIT
        )
        # Both see the same demand stream; traffic stays within an
        # order of magnitude even under heavy Doppelgänger thrashing.
        assert dopp.traffic_bytes < 20 * max(base.traffic_bytes, 1)
        assert base.instructions == dopp.instructions
