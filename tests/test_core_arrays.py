"""Unit tests for the decoupled tag array and MTag/data array."""

import pytest

from repro.core.data_array import MTagDataArray
from repro.core.tag_array import NULL_PTR, TagArray


class TestTagArrayGeometry:
    def test_entry_count(self):
        tags = TagArray(1024, 16)
        assert tags.num_sets == 64

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            TagArray(1000, 16)


class TestTagArrayOps:
    def test_probe_empty(self):
        tags = TagArray(64, 4)
        assert tags.probe(0x1000) is None

    def test_allocate_then_probe(self):
        tags = TagArray(64, 4)
        alloc = tags.allocate(0x1000)
        assert alloc.victim is None
        assert tags.probe(0x1000) is alloc.entry

    def test_allocate_resident_raises(self):
        tags = TagArray(64, 4)
        tags.allocate(0x1000)
        with pytest.raises(ValueError):
            tags.allocate(0x1000)

    def test_entry_id_dense(self):
        tags = TagArray(64, 4)
        entry = tags.allocate(0x1000).entry
        assert tags.entry(entry.entry_id) is entry
        assert tags.entry(NULL_PTR) is None

    def test_eviction_when_set_full(self):
        tags = TagArray(16, 4)  # 4 sets
        stride = tags.num_sets * tags.block_size
        for i in range(4):
            tags.allocate(i * stride)
        alloc = tags.allocate(4 * stride)
        assert alloc.victim is not None
        assert alloc.victim.addr == 0

    def test_touch_changes_victim(self):
        tags = TagArray(16, 4)
        stride = tags.num_sets * tags.block_size
        entries = [tags.allocate(i * stride).entry for i in range(4)]
        tags.touch(entries[0])
        alloc = tags.allocate(4 * stride)
        assert alloc.victim.addr == stride

    def test_invalidate_frees_way(self):
        tags = TagArray(16, 4)
        stride = tags.num_sets * tags.block_size
        entries = [tags.allocate(i * stride).entry for i in range(4)]
        tags.invalidate(entries[2])
        assert tags.probe(2 * stride) is None
        alloc = tags.allocate(4 * stride)
        assert alloc.victim is None

    def test_invalidate_nonresident_raises(self):
        tags = TagArray(16, 4)
        entry = tags.allocate(0).entry
        tags.invalidate(entry)
        with pytest.raises(ValueError):
            tags.invalidate(entry)

    def test_occupied_counter(self):
        tags = TagArray(64, 4)
        tags.allocate(0)
        tags.allocate(64)
        assert tags.occupied == 2


class TestTagLinkedLists:
    def test_list_length_and_iter(self):
        tags = TagArray(64, 4)
        a = tags.allocate(0).entry
        b = tags.allocate(64).entry
        a.next = b.entry_id
        b.prev = a.entry_id
        assert tags.list_length(a.entry_id) == 2
        assert [e.addr for e in tags.iter_list(a.entry_id)] == [0, 64]

    def test_null_list_empty(self):
        tags = TagArray(64, 4)
        assert tags.list_length(NULL_PTR) == 0


class TestDataArray:
    def test_probe_empty(self):
        data = MTagDataArray(64, 4)
        assert data.probe(12345) is None

    def test_allocate_then_probe(self):
        data = MTagDataArray(64, 4)
        alloc = data.allocate(12345)
        assert data.probe(12345) is alloc.entry

    def test_precise_and_approx_distinct(self):
        data = MTagDataArray(64, 4)
        data.allocate(7, precise=False)
        assert data.probe(7, precise=True) is None
        data.allocate(7, precise=True)
        assert data.probe(7, precise=True) is not None

    def test_allocate_resident_raises(self):
        data = MTagDataArray(64, 4)
        data.allocate(7)
        with pytest.raises(ValueError):
            data.allocate(7)

    def test_eviction_when_set_full(self):
        data = MTagDataArray(16, 4)  # 4 sets
        maps = []
        m = 0
        while len(maps) < 5:  # five maps hitting the same set
            if data.set_index(m) == data.set_index(0) and m not in maps:
                maps.append(m)
            m += 1
        for mv in maps[:4]:
            data.allocate(mv)
        alloc = data.allocate(maps[4])
        assert alloc.victim is not None
        assert alloc.victim.map_value == maps[0]

    def test_free_releases_entry(self):
        data = MTagDataArray(64, 4)
        entry = data.allocate(7).entry
        data.free(entry)
        assert data.probe(7) is None
        assert data.occupied == 0

    def test_free_nonresident_raises(self):
        data = MTagDataArray(64, 4)
        entry = data.allocate(7).entry
        data.free(entry)
        with pytest.raises(ValueError):
            data.free(entry)

    def test_touch_protects_from_eviction(self):
        data = MTagDataArray(16, 4)
        maps = []
        m = 0
        while len(maps) < 5:
            if data.set_index(m) == data.set_index(0) and m not in maps:
                maps.append(m)
            m += 1
        entries = [data.allocate(mv).entry for mv in maps[:4]]
        data.touch(entries[0])
        alloc = data.allocate(maps[4])
        assert alloc.victim is entries[1]

    def test_non_pow2_sets_supported(self):
        # The 3/4 uniDoppelgänger data array has 1536 sets.
        data = MTagDataArray(24 * 64, 16)
        assert data.num_sets == 96
        data.allocate(12345)
        assert data.probe(12345) is not None
