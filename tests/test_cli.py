"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import experiment_names, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig02", "fig13", "table3", "headline"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        # Typed UnknownExperimentError, mapped to the config exit code.
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "fig99" in err

    def test_unknown_experiment_in_sweep(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_listing(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "Registered experiments" in out
        for name in ("fig02", "table3", "faultsweep"):
            assert name in out
        assert "config-only" in out

    def test_config_only_experiment(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "2156" in out

    def test_fig13_no_context_needed(self, capsys):
        assert main(["fig13"]) == 0
        assert "reduction" in capsys.readouterr().out

    def test_simulated_experiment_with_subset(self, capsys, tmp_path):
        assert main(
            ["table2", "--scale", "0.05", "--seed", "3",
             "--workloads", "swaptions", "--out", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "swaptions" in out
        assert os.path.exists(tmp_path / "table2.txt")

    def test_names_cover_all_figures(self):
        names = experiment_names()
        assert len(names) == 14
        assert "faultsweep" in names
        assert "frontier" in names
