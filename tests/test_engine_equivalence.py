"""Batched vs reference engine: bit-identical results.

The batched engine's contract (ISSUE 2) is exact equivalence — same
CacheStats, cycle counts, stall breakdowns, coherence counters and
approximation behavior as the reference interpreter on every workload
and LLC organization. Floating-point fields are compared with ``==``,
not approx: the fast path only regroups exact dyadic sums.
"""

from __future__ import annotations

import pytest

from repro.engine import ENGINES, engine_names, get_engine
from repro.harness.runner import ConfigSpec, baseline_spec, dopp_spec, uni_spec
from repro.hierarchy.system import System, SystemConfig
from repro.workloads.registry import get_workload, workload_names

SEED = 3
SCALE = 0.05


def _run(trace, spec: ConfigSpec, engine: str, config: SystemConfig = None):
    llc = spec.build_llc(trace.regions, 0.0625)
    system = System(llc, config=config or SystemConfig())
    return system.run(trace, engine=engine)


def assert_results_equal(ref, bat):
    assert ref.cycles == bat.cycles
    assert ref.per_core_cycles == bat.per_core_cycles
    assert ref.instructions == bat.instructions
    assert ref.llc_misses == bat.llc_misses
    assert ref.llc_accesses == bat.llc_accesses
    assert ref.dram_reads == bat.dram_reads
    assert ref.dram_writes == bat.dram_writes
    assert ref.traffic_bytes == bat.traffic_bytes
    assert ref.coherence_invalidations == bat.coherence_invalidations
    assert ref.back_invalidations == bat.back_invalidations
    assert ref.wb_stall_cycles == bat.wb_stall_cycles
    assert ref.l1_stats == bat.l1_stats
    assert ref.l2_stats == bat.l2_stats
    # Bit-identical, not approximately equal.
    assert ref.stall_breakdown == bat.stall_breakdown


@pytest.fixture(scope="module")
def traces():
    out = {}
    for name in workload_names():
        out[name] = get_workload(name, seed=SEED, scale=SCALE).build_trace()
    return out


@pytest.mark.parametrize("name", workload_names())
def test_baseline_equivalence_all_workloads(traces, name):
    trace = traces[name]
    ref = _run(trace, baseline_spec(), "reference")
    bat = _run(trace, baseline_spec(), "batched")
    assert_results_equal(ref, bat)


@pytest.mark.parametrize("name", ["canneal", "jpeg"])
@pytest.mark.parametrize(
    "spec", [dopp_spec(14, 0.25), uni_spec(14, 0.5)], ids=["dopp", "uni"]
)
def test_approx_llc_equivalence(traces, name, spec):
    trace = traces[name]
    ref = _run(trace, spec, "reference")
    bat = _run(trace, spec, "batched")
    assert_results_equal(ref, bat)


@pytest.mark.parametrize("policy", ["fifo", "plru", "random"])
def test_policy_equivalence(traces, policy):
    # random falls back to the reference engine inside batched.run;
    # fifo/plru exercise the fast path with non-LRU replacement.
    cfg = SystemConfig(policy=policy)
    trace = traces["kmeans"]
    ref = _run(trace, baseline_spec(), "reference", cfg)
    bat = _run(trace, baseline_spec(), "batched", cfg)
    assert_results_equal(ref, bat)


def test_limit_equivalence(traces):
    trace = traces["swaptions"]
    llc_r = baseline_spec().build_llc(trace.regions, 0.0625)
    llc_b = baseline_spec().build_llc(trace.regions, 0.0625)
    ref = System(llc_r).run(trace, limit=5000, engine="reference")
    bat = System(llc_b).run(trace, limit=5000, engine="batched")
    assert_results_equal(ref, bat)


def test_engine_registry():
    assert engine_names()[0] == "batched"
    assert set(ENGINES) == {"batched", "reference"}
    name, fn = get_engine(None)
    assert name == "batched" and callable(fn)
    with pytest.raises(ValueError):
        get_engine("turbo")


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert get_engine(None)[0] == "reference"
    # explicit choice beats the environment
    assert get_engine("batched")[0] == "batched"
