"""Format adapters: parsing, streaming bounds, and malformed input.

The good fixtures under ``tests/fixtures/ingest/`` are committed (CI's
ingest-smoke job replays them too); each has a malformed twin whose
error line is known, so path:line context can be asserted exactly.
"""

import os

import numpy as np
import pytest

from repro.cli import main
from repro.errors import TraceFormatError
from repro.ingest import get_adapter, open_trace_file

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "ingest")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def drain(adapter_name: str, path: str, chunk: int = 64):
    """All batches of a fixture, asserting the chunk bound throughout."""
    adapter = get_adapter(adapter_name)
    batches = list(adapter.iter_batches(path, chunk))
    assert batches, "fixture produced no batches"
    assert all(len(b) <= chunk for b in batches)
    return batches


def concat(batches, column: str) -> np.ndarray:
    return np.concatenate([getattr(b, column) for b in batches])


class TestLackey:
    def test_record_accounting(self):
        # 160 iterations of L+S, plus 32 M lines (two records each).
        batches = drain("lackey", fixture("tiny.lackey"))
        total = sum(len(b) for b in batches)
        assert total == 160 * 2 + 32 * 2
        writes = concat(batches, "is_write")
        # Each M contributes one read and one write.
        assert int(writes.sum()) == 160 + 32

    def test_ifetches_fold_into_gaps(self):
        batches = drain("lackey", fixture("tiny.lackey"))
        gaps = concat(batches, "gaps")
        # Every I line becomes exactly one gap instruction (32 of them).
        assert int(gaps.sum()) == 32
        assert gaps.min() >= 0

    def test_banner_and_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "t.lackey"
        p.write_text("==99== banner\n\n L 1000,8\n")
        (batch,) = drain("lackey", str(p))
        assert len(batch) == 1
        assert batch.addrs[0] == 0x1000

    def test_gzip_twin_is_identical(self):
        plain = drain("lackey", fixture("tiny.lackey"))
        gz = drain("lackey", fixture("tiny.lackey.gz"))
        for col in ("cores", "addrs", "is_write", "gaps"):
            np.testing.assert_array_equal(concat(plain, col), concat(gz, col))

    def test_values_are_nan_for_address_only_format(self):
        batches = drain("lackey", fixture("tiny.lackey"))
        assert np.isnan(concat(batches, "values")).all()


class TestDinero:
    def test_record_accounting(self):
        batches = drain("dinero", fixture("tiny.din"))
        assert sum(len(b) for b in batches) == 120 * 2
        writes = concat(batches, "is_write")
        assert int(writes.sum()) == 120
        # 20 ifetch lines folded into gaps.
        assert int(concat(batches, "gaps").sum()) == 20

    def test_comments_skipped(self, tmp_path):
        p = tmp_path / "t.din"
        p.write_text("# comment\n0 1000\n")
        (batch,) = drain("dinero", str(p))
        assert len(batch) == 1 and not batch.is_write[0]


class TestGeneric:
    def test_csv_carries_values_cores_and_gaps(self):
        batches = drain("csv", fixture("tiny.csv"))
        assert sum(len(b) for b in batches) == 200
        values = concat(batches, "values")
        assert not np.isnan(values).any()
        assert set(concat(batches, "cores").tolist()) == {0, 1}
        assert concat(batches, "gaps").max() == 3

    def test_csv_optional_columns_default(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("addr\n0x1000\n4096\n")
        (batch,) = drain("csv", str(p))
        assert batch.addrs.tolist() == [0x1000, 4096]
        assert not batch.is_write.any()
        assert np.isnan(batch.values).all()

    def test_jsonl_fixture(self):
        batches = drain("jsonl", fixture("tiny.jsonl"))
        assert sum(len(b) for b in batches) == 150
        assert not np.isnan(concat(batches, "values")).any()

    def test_jsonl_bool_is_write(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"addr": 64, "is_write": true}\n{"addr": 128}\n')
        (batch,) = drain("jsonl", str(p))
        assert batch.is_write.tolist() == [True, False]


class TestMalformed:
    """Each bad fixture fails on a known line with path:line context."""

    CASES = [
        ("lackey", "bad.lackey", 3, "invalid address"),
        ("dinero", "bad.din", 2, "unknown dinero label"),
        ("csv", "bad.csv", 3, "fields"),
        ("jsonl", "bad.jsonl", 2, "addr"),
    ]

    @pytest.mark.parametrize("adapter,name,line,needle", CASES)
    def test_adapter_raises_with_line_context(self, adapter, name, line, needle):
        path = fixture(name)
        with pytest.raises(TraceFormatError) as excinfo:
            list(get_adapter(adapter).iter_batches(path, 64))
        assert excinfo.value.exit_code == 3
        msg = str(excinfo.value)
        assert f"{name}:{line}:" in msg
        assert needle in msg

    @pytest.mark.parametrize("adapter,name,line,needle", CASES)
    def test_cli_exits_3_with_context(self, adapter, name, line, needle, capsys):
        assert main(["ingest", fixture(name), "--format", adapter]) == 3
        err = capsys.readouterr().err
        assert f"{name}:{line}:" in err

    def test_missing_file(self):
        with pytest.raises(TraceFormatError) as excinfo:
            open_trace_file(fixture("does-not-exist.lackey"))
        assert "no such trace file" in str(excinfo.value)
        assert excinfo.value.exit_code == 3

    def test_negative_address_rejected(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("addr\n-64\n")
        with pytest.raises(TraceFormatError) as excinfo:
            list(get_adapter("csv").iter_batches(str(p), 64))
        assert "negative address" in str(excinfo.value)
