"""Tests for the ExperimentStrategy plugin API and its registry."""

import importlib
import json
import os
import sys

import pytest

import repro
from repro.errors import ConfigError, UnknownExperimentError
from repro.harness.experiments import (
    STRATEGIES,
    fig10_data_array,
    table2_approx_footprint,
)
from repro.harness.reporting import Table
from repro.harness.runner import (
    ExperimentContext,
    baseline_spec,
    dopp_spec,
)
from repro.harness.strategy import (
    ENTRY_POINT_GROUP,
    ExperimentStrategy,
    Requirements,
    StrategyRegistry,
    registry,
    run_strategies,
)

SEED = 3
SCALE = 0.05


class TinyStrategy(ExperimentStrategy):
    """Config-only strategy used across the registry tests."""

    name = "tiny"
    description = "a tiny test strategy"
    requires = Requirements(context=False)

    def __init__(self):
        self.calls = []

    def setup(self, ctx):
        self.calls.append("setup")

    def execute(self, ctx):
        self.calls.append("execute")
        table = Table("Tiny", ["k", "v"])
        table.add_row("answer", 42)
        return table

    def teardown(self, ctx):
        self.calls.append("teardown")

    def declare_metrics(self):
        return ("answers",)


class TestRegistry:
    def test_round_trip_register_discover_run(self):
        reg = StrategyRegistry()
        reg.register(TinyStrategy)
        strategy = reg.get("tiny")
        assert isinstance(strategy, TinyStrategy)
        result = run_strategies(["tiny"], strategy_registry=reg)
        assert strategy.calls == ["setup", "execute", "teardown"]
        assert result.outcomes[0].name == "tiny"
        assert result.outcomes[0].tables[""].to_dict()["rows"] == [["answer", 42]]
        assert result.ctx is None  # config-only: no context built

    def test_register_decorator_and_instance(self):
        reg = StrategyRegistry()

        @reg.register
        class Decorated(TinyStrategy):
            """Registered via decorator."""

            name = "decorated"

        instance = TinyStrategy()
        reg.register(instance)
        assert reg.names() == ["decorated", "tiny"]
        assert reg.get("tiny") is instance
        assert Decorated is not None  # decorator returns the class

    def test_duplicate_name_rejected(self):
        reg = StrategyRegistry()
        reg.register(TinyStrategy)
        with pytest.raises(ConfigError, match="already registered"):
            reg.register(TinyStrategy)

    def test_non_strategy_rejected(self):
        reg = StrategyRegistry()
        with pytest.raises(ConfigError, match="not an ExperimentStrategy"):
            reg.register(object())

    def test_unnamed_strategy_rejected(self):
        class NoName(TinyStrategy):
            """A strategy that forgot its name."""

            name = ""

        with pytest.raises(ConfigError, match="has no name"):
            StrategyRegistry().register(NoName)

    def test_unknown_lookup_is_typed(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            registry.get("fig99")
        err = excinfo.value
        assert err.exit_code == 2
        assert isinstance(err, ValueError)  # legacy except-ValueError works
        assert err.name == "fig99"
        assert "table2" in err.known

    def test_builtin_order_is_paper_order(self):
        # Deterministic, documented: STRATEGIES declaration order.
        names = registry.names()
        declared = [cls.name for cls in STRATEGIES]
        assert names[: len(declared)] == declared
        # And it matches what the public helper reports.
        assert repro.experiment_names() == names

    def test_discovery_is_deterministic(self):
        builds = [
            StrategyRegistry(
                builtin_modules=("repro.harness.experiments",)
            ).names()
            for _ in range(2)
        ]
        assert builds[0] == builds[1]

    def test_registry_table_lists_everything(self):
        table = registry.table()
        rendered = table.render()
        for name in registry.names():
            assert name in rendered
        assert "config-only" in rendered

    def test_contains_len_iter(self):
        reg = StrategyRegistry()
        reg.register(TinyStrategy)
        assert "tiny" in reg and "nope" not in reg
        assert len(reg) == 1
        assert [s.name for s in reg] == ["tiny"]


def _write_plugin_dist(directory):
    """A synthetic installed distribution advertising two strategies."""
    (directory / "myplug.py").write_text(
        "from repro.harness.strategy import ExperimentStrategy, Requirements\n"
        "from repro.harness.reporting import Table\n"
        "\n\n"
        "class DemoStrategy(ExperimentStrategy):\n"
        "    name = 'demo'\n"
        "    description = 'third-party demo'\n"
        "    requires = Requirements(context=False)\n"
        "\n"
        "    def execute(self, ctx):\n"
        "        table = Table('Demo', ['k', 'v'])\n"
        "        table.add_row('plugin', 1)\n"
        "        return table\n"
        "\n\n"
        "class ShadowStrategy(ExperimentStrategy):\n"
        "    name = 'table2'\n"
        "    description = 'tries to shadow a built-in'\n"
        "    requires = Requirements(context=False)\n"
        "\n"
        "    def execute(self, ctx):\n"
        "        return Table('Shadow', ['k'])\n"
    )
    info = directory / "demo_plug-0.1.dist-info"
    info.mkdir()
    (info / "METADATA").write_text(
        "Metadata-Version: 2.1\nName: demo-plug\nVersion: 0.1\n"
    )
    (info / "entry_points.txt").write_text(
        f"[{ENTRY_POINT_GROUP}]\n"
        "demo = myplug:DemoStrategy\n"
        "shadow = myplug:ShadowStrategy\n"
        "broken = myplug_missing:Nope\n"
    )


@pytest.fixture
def plugin_dist(tmp_path):
    """Put a synthetic plugin distribution on sys.path, then clean up."""
    _write_plugin_dist(tmp_path)
    sys.path.insert(0, str(tmp_path))
    importlib.invalidate_caches()
    try:
        yield tmp_path
    finally:
        sys.path.remove(str(tmp_path))
        sys.modules.pop("myplug", None)
        importlib.invalidate_caches()


class TestEntryPointDiscovery:
    def test_plugin_discovered_and_runs(self, plugin_dist):
        reg = StrategyRegistry(
            builtin_modules=("repro.harness.experiments",),
            entry_point_group=ENTRY_POINT_GROUP,
        )
        with pytest.warns(RuntimeWarning) as caught:
            names = reg.names()
        assert "demo" in names
        # Built-ins come first; entry points are appended.
        assert names.index("demo") > names.index("faultsweep")
        result = run_strategies(["demo"], strategy_registry=reg)
        assert result.outcomes[0].tables[""].to_dict()["rows"] == [["plugin", 1]]
        messages = [str(w.message) for w in caught]
        # The broken entry point is skipped with a warning...
        assert any("failed to load" in m for m in messages)
        # ...and the built-in wins the name collision.
        assert any("shadows registered experiment" in m for m in messages)
        assert type(reg.get("table2")).__name__ == "Table2Strategy"

    def test_discovery_disabled_without_group(self, plugin_dist):
        reg = StrategyRegistry(
            builtin_modules=("repro.harness.experiments",)
        )
        assert "demo" not in reg.names()


class FanStrategy(ExperimentStrategy):
    """A sweep whose fan exists only in its metadata (no name checks)."""

    name = "fansweep"
    description = "metadata-driven fan for the jobs tests"
    requires = Requirements(
        run_specs=(baseline_spec(),)
        + tuple(dopp_spec(b, 0.25) for b in (12, 13, 14)),
        error_specs=tuple(dopp_spec(b, 0.25) for b in (12, 13, 14)),
    )

    def __init__(self):
        self.prefetched_runs = None
        self.prefetched_errors = None

    def execute(self, ctx):
        # Snapshot the memo BEFORE asking for anything: with --jobs
        # the prefetch must have filled it purely from ``requires``.
        self.prefetched_runs = set(ctx._runs)
        self.prefetched_errors = set(ctx._errors)
        table = Table("Fan", ["workload", "config", "cycles", "error"])
        for name in ctx.names:
            for spec in self.requires.run_specs:
                error = (
                    ctx.error(name, spec)
                    if spec in self.requires.error_specs
                    else None
                )
                table.add_row(
                    name, spec.label(), ctx.run(name, spec).system.cycles,
                    error,
                )
        return table


class TestJobsFromMetadata:
    def test_fan_split_driven_by_requirements(self):
        reg = StrategyRegistry()
        reg.register(FanStrategy)
        strategy = reg.get("fansweep")
        parallel = run_strategies(
            ["fansweep"],
            strategy_registry=reg,
            seed=SEED,
            scale=SCALE,
            workloads=["swaptions"],
            jobs=2,  # one workload, 4-config fan: exercises fan-splitting
        )
        # Every (workload, spec) pair the metadata declares was
        # prefetched before execute() ran.
        assert strategy.prefetched_runs == {
            ("swaptions", spec) for spec in FanStrategy.requires.run_specs
        }
        assert strategy.prefetched_errors == {
            ("swaptions", spec) for spec in FanStrategy.requires.error_specs
        }
        sequential = run_strategies(
            [FanStrategy()],
            seed=SEED,
            scale=SCALE,
            workloads=["swaptions"],
        )
        assert (
            parallel.outcomes[0].tables[""].to_dict()
            == sequential.outcomes[0].tables[""].to_dict()
        )

        def functional(summaries):
            # Wall-clock metrics legitimately differ across job counts.
            return [
                {
                    k: v
                    for k, v in row.items()
                    if k not in ("sim_wall_s", "accesses_per_sec")
                }
                for row in summaries
            ]

        assert functional(parallel.ctx.run_summaries()) == functional(
            sequential.ctx.run_summaries()
        )


class TestLegacyParity:
    def _ctx(self, workloads=("swaptions",)):
        return ExperimentContext(
            seed=SEED, scale=SCALE, workloads=list(workloads)
        )

    def test_table2_matches_driver(self, tmp_path):
        ctx = self._ctx()
        legacy = table2_approx_footprint(ctx)
        tables = repro.run_experiment(
            "table2", ctx=ctx, json_dir=str(tmp_path)
        )
        assert list(tables) == [""]
        assert tables[""].to_dict() == legacy.to_dict()
        self._check_bench_shape(tmp_path, "table2", ctx, ["main"])

    def test_fig10_matches_driver(self, tmp_path):
        ctx = self._ctx()
        legacy = fig10_data_array(ctx)
        tables = repro.run_experiment("fig10", ctx=ctx, json_dir=str(tmp_path))
        assert set(tables) == {"error", "runtime", "stats"}
        for key, table in legacy.items():
            assert tables[key].to_dict() == table.to_dict()
        self._check_bench_shape(
            tmp_path, "fig10", ctx, ["error", "runtime", "stats"]
        )

    def test_strategy_instance_accepted(self):
        tables = repro.run_experiment(TinyStrategy())
        assert tables[""].to_dict()["rows"] == [["answer", 42]]

    def test_strategy_class_accepted(self):
        tables = repro.run_experiment(TinyStrategy)
        assert tables[""].to_dict()["rows"] == [["answer", 42]]

    @staticmethod
    def _check_bench_shape(json_dir, name, ctx, table_keys):
        """BENCH_obs.json carries the same shape the CLI produces."""
        with open(os.path.join(str(json_dir), f"{name}.json")) as fh:
            payload = json.load(fh)
        assert payload["experiment"] == name
        assert sorted(payload["tables"]) == sorted(table_keys)
        with open(os.path.join(str(json_dir), "BENCH_obs.json")) as fh:
            bench = json.load(fh)
        assert name in bench["experiments"]
        assert sorted(bench["experiments"][name]["tables"]) == sorted(
            table_keys
        )
        assert bench["experiments"][name]["wall_s"] > 0
        assert bench["runs"] == ctx.run_summaries()
        assert bench["context"] == ctx.context_summary()


class TestCliIntegration:
    @pytest.fixture
    def registered_tiny(self):
        """Register TinyStrategy on the global registry, then remove it."""
        registry.register(TinyStrategy)
        try:
            yield
        finally:
            registry.unregister("tiny")

    def test_registered_strategy_full_pipeline(
        self, registered_tiny, tmp_path, capsys
    ):
        """A plugin runs through the CLI with checkpoint, store and jobs."""
        from repro.cli import main
        from repro.obs.store import RunStore

        ckpt = tmp_path / "ckpt"
        store = tmp_path / "history.db"
        argv = [
            "experiments", "tiny", "fansweep",
            "--jobs", "2",
            "--scale", str(SCALE), "--seed", str(SEED),
            "--workloads", "swaptions",
            "--checkpoint-dir", str(ckpt),
            "--store", str(store),
            "--json-out", str(tmp_path / "json"),
        ]
        registry.register(FanStrategy)
        try:
            assert main(argv) == 0
            out = capsys.readouterr().out
            assert "Tiny" in out and "Fan" in out
            assert "recorded in" in out
            # Resume: the journaled results short-circuit the prefetch.
            assert main(argv + ["--resume"]) == 0
            out = capsys.readouterr().out
            assert "[resumed" in out
        finally:
            registry.unregister("fansweep")
        recorded = RunStore(str(store))
        try:
            _, rows = recorded.query(
                "SELECT COUNT(*) FROM runs WHERE finished = 1"
            )
        finally:
            recorded.close()
        assert rows[0][0] == 2