"""Tests for structures, the CACTI-like model and energy accounting."""

import pytest

from repro.energy.accounting import MAP_GENERATION_PJ, EnergyModel
from repro.energy.cacti import CactiModel
from repro.energy.structures import (
    TABLE3_PUBLISHED,
    baseline_llc_structure,
    doppelganger_structures,
    l1_structure,
    l2_structure,
    unidoppelganger_structures,
)
from repro.hierarchy.llc import BaselineLLC, SplitDoppelgangerLLC, UnifiedDoppelgangerLLC


def all_structures():
    structs = {"baseline_llc": baseline_llc_structure()}
    structs.update(doppelganger_structures())
    structs.update(unidoppelganger_structures())
    return structs


class TestTable3Sizes:
    """The paper's Table 3 sizes must reproduce bit-for-bit."""

    @pytest.mark.parametrize(
        "name,expected_kb",
        [
            ("baseline_llc", 2156.0),
            ("precise_1mb", 1080.0),
            ("dopp_tag", 154.0),
            ("dopp_data", 275.0),
            ("uni_tag", 316.0),
            ("uni_data", 1100.0),
        ],
    )
    def test_total_kb(self, name, expected_kb):
        assert all_structures()[name].total_kb == pytest.approx(expected_kb, rel=0.001)

    @pytest.mark.parametrize(
        "name,bits",
        [
            ("baseline_llc", 27),
            ("precise_1mb", 28),
            ("dopp_tag", 77),
            ("dopp_data", 38),
            ("uni_tag", 79),
            ("uni_data", 38),
        ],
    )
    def test_tag_entry_bits(self, name, bits):
        assert all_structures()[name].tag_entry_bits == bits

    def test_dopp_tag_field_breakdown(self):
        fields = all_structures()["dopp_tag"].fields
        assert fields["tag"] == 16
        assert fields["tag_pointers"] == 28  # 2 x 14
        assert fields["map"] == 21

    def test_overall_reduction(self):
        # Sec. 5.6: total storage reduced by ~1.43x.
        structs = all_structures()
        dopp_total = sum(
            structs[n].total_kb for n in ("precise_1mb", "dopp_tag", "dopp_data")
        )
        assert 2156.0 / dopp_total == pytest.approx(1.43, abs=0.02)


class TestCactiModel:
    def test_published_points_fit(self):
        """Every Table 3 CACTI output is matched within tolerance."""
        model = CactiModel()
        structs = all_structures()
        for name, (kb, mm2, t_ns, d_ns, t_pj, d_pj) in TABLE3_PUBLISHED.items():
            s = structs[name]
            assert model.area_mm2(s) == pytest.approx(mm2, rel=0.30)
            assert model.tag_energy_pj(s) == pytest.approx(t_pj, rel=0.30)
            assert model.tag_latency_ns(s) == pytest.approx(t_ns, rel=0.35)
            if d_pj is not None:
                assert model.data_energy_pj(s) == pytest.approx(d_pj, rel=0.15)
                assert model.data_latency_ns(s) == pytest.approx(d_ns, rel=0.15)

    def test_monotone_in_size(self):
        model = CactiModel()
        small = doppelganger_structures(data_fraction=0.125)["dopp_data"]
        big = doppelganger_structures(data_fraction=0.5)["dopp_data"]
        assert model.area_mm2(small) < model.area_mm2(big)
        assert model.data_energy_pj(small) < model.data_energy_pj(big)

    def test_tag_only_structure_zero_data(self):
        model = CactiModel()
        tag = doppelganger_structures()["dopp_tag"]
        assert model.data_energy_pj(tag) == 0.0
        assert model.data_latency_ns(tag) == 0.0

    def test_doppelganger_data_access_faster_than_baseline(self):
        # Sec. 5.6: MTag + data access 1.31x faster than baseline data.
        model = CactiModel()
        structs = all_structures()
        dopp = model.tag_latency_ns(structs["dopp_data"]) + model.data_latency_ns(
            structs["dopp_data"]
        )
        base = model.data_latency_ns(structs["baseline_llc"])
        assert dopp < base

    def test_leakage_increases_with_area(self):
        model = CactiModel()
        structs = all_structures()
        assert model.leakage_mw(structs["baseline_llc"]) > model.leakage_mw(
            structs["dopp_data"]
        )

    def test_fig13_area_reductions(self):
        """Fig. 13's shape: reductions grow as the data array shrinks."""
        model = CactiModel()
        base = model.area_mm2(baseline_llc_structure())
        reductions = []
        for frac in (0.5, 0.25, 0.125):
            area = sum(
                model.area_mm2(s)
                for s in doppelganger_structures(data_fraction=frac).values()
            )
            reductions.append(base / area)
        assert reductions[0] < reductions[1] < reductions[2]
        # Paper: 1.36x, 1.55x, 1.70x.
        assert reductions[1] == pytest.approx(1.55, rel=0.15)

    def test_uni_quarter_beats_split_quarter(self):
        """uniDoppelgänger 1/4 reaches far higher area reduction (3.15x)."""
        model = CactiModel()
        base = model.area_mm2(baseline_llc_structure())
        uni = sum(
            model.area_mm2(s)
            for s in unidoppelganger_structures(data_fraction=0.25).values()
        )
        split = sum(
            model.area_mm2(s)
            for s in doppelganger_structures(data_fraction=0.25).values()
        )
        assert base / uni > base / split
        assert base / uni == pytest.approx(3.15, rel=0.25)


class TestEnergyAccounting:
    def test_map_generation_energy_constant(self):
        assert MAP_GENERATION_PJ == pytest.approx(168.0)

    def test_baseline_events_priced(self):
        model = EnergyModel()
        llc = BaselineLLC()
        llc.cache.access(0)
        llc.cache.access(0)
        report = model.dynamic_energy(llc, cycles=1000)
        assert report.dynamic_pj > 0
        assert report.leakage_mw > 0
        assert report.cycles == 1000
        assert report.leakage_energy_pj > 0

    def test_structures_for_each_llc_kind(self):
        model = EnergyModel()
        assert set(model.structures_for(BaselineLLC())) == {"baseline_llc"}
        assert set(model.structures_for(SplitDoppelgangerLLC())) == {
            "precise_1mb",
            "dopp_tag",
            "dopp_data",
        }
        assert set(model.structures_for(UnifiedDoppelgangerLLC())) == {
            "uni_tag",
            "uni_data",
        }

    def test_map_generation_charged(self):
        import numpy as np

        from repro.trace.record import DType
        from repro.trace.region import Region, RegionMap

        regions = RegionMap(
            [Region("r", 0, 1 << 20, DType.F32, approx=True, vmin=0, vmax=100)]
        )
        model = EnergyModel()
        llc = SplitDoppelgangerLLC(regions=regions)
        llc.fill(0, 0, True, 0, values=np.full(16, 5.0))
        report = model.dynamic_energy(llc)
        assert report.breakdown[("map_generation", "op")] == pytest.approx(168.0)

    def test_hierarchy_area_includes_private(self):
        model = EnergyModel()
        llc = BaselineLLC()
        assert model.hierarchy_area_mm2(llc) > model.llc_area_mm2(llc)

    def test_l1_l2_structures(self):
        assert l1_structure().entries == 256
        assert l2_structure().entries == 2048
