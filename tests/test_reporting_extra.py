"""Tests for the bar-chart rendering and table utilities."""

from repro.harness.reporting import Table


class TestRenderBars:
    def make(self):
        table = Table("Demo figure", ["workload", "12-bit", "14-bit"])
        table.add_row("alpha", 1.0, 0.5)
        table.add_row("beta", 0.25, None)
        table.add_note("reference note")
        return table

    def test_bar_widths_proportional(self):
        text = self.make().render_bars(width=20)
        lines = text.splitlines()
        full = next(l for l in lines if "1.000" in l)
        half = next(l for l in lines if "0.500" in l)
        assert full.count("#") == 20
        assert half.count("#") == 10

    def test_none_cells_skipped(self):
        text = self.make().render_bars(width=20)
        # beta has only one bar (the None column is skipped).
        beta_idx = text.splitlines().index("beta")
        remaining = text.splitlines()[beta_idx + 1 :]
        bars = [l for l in remaining if "|" in l]
        assert len(bars) == 1

    def test_notes_preserved(self):
        assert "reference note" in self.make().render_bars()

    def test_custom_max(self):
        table = Table("t", ["w", "v"])
        table.add_row("x", 1.0)
        text = table.render_bars(width=10, max_value=2.0)
        assert text.splitlines()[-1].count("#") == 5

    def test_no_numeric_columns_falls_back(self):
        table = Table("t", ["w", "label"])
        table.add_row("x", "hello")
        assert "hello" in table.render_bars()
