"""Tests for the functional Doppelgänger approximation model."""

import numpy as np
import pytest

from repro.core.functional import (
    BlockApproximator,
    FunctionalDoppelganger,
    IdentityApproximator,
)
from repro.core.maps import MapConfig
from repro.trace.record import DType
from repro.trace.region import Region


def region(approx=True, dtype=DType.F32, vmin=0.0, vmax=100.0, size=1 << 16):
    return Region("r", 0, size, dtype, approx=approx, vmin=vmin, vmax=vmax)


class TestFunctionalStore:
    def test_first_access_inserts(self):
        store = FunctionalDoppelganger(64, 4)
        block = np.full(16, 5.0)
        out = store.access(DType.F32, 100, block)
        np.testing.assert_array_equal(out, block)
        assert store.insertions == 1

    def test_same_map_returns_canonical(self):
        store = FunctionalDoppelganger(64, 4)
        first = np.full(16, 5.0)
        second = np.full(16, 6.0)
        store.access(DType.F32, 100, first)
        out = store.access(DType.F32, 100, second)
        np.testing.assert_array_equal(out, first)
        assert store.shared_hits == 1

    def test_different_maps_independent(self):
        store = FunctionalDoppelganger(64, 4)
        store.access(DType.F32, 100, np.full(16, 5.0))
        out = store.access(DType.F32, 200, np.full(16, 7.0))
        np.testing.assert_array_equal(out, np.full(16, 7.0))

    def test_dtype_isolates(self):
        store = FunctionalDoppelganger(64, 4)
        store.access(DType.F32, 100, np.full(16, 5.0))
        out = store.access(DType.U8, 100, np.full(16, 9.0))
        np.testing.assert_array_equal(out, np.full(16, 9.0))

    def test_lru_eviction(self):
        store = FunctionalDoppelganger(4, 4)  # one set
        for m in range(4):
            store.access(DType.F32, m, np.full(16, float(m)))
        store.access(DType.F32, 4, np.full(16, 40.0))  # evicts LRU (map 0)
        out = store.access(DType.F32, 0, np.full(16, 99.0))
        np.testing.assert_array_equal(out, np.full(16, 99.0))  # reinserted
        assert store.evictions >= 1

    def test_occupancy_bounded(self):
        store = FunctionalDoppelganger(16, 4)
        for m in range(100):
            store.access(DType.F32, m, np.full(16, float(m % 50)))
        assert store.occupancy() <= 16

    def test_partial_block_no_alias(self):
        store = FunctionalDoppelganger(64, 4)
        store.access(DType.F32, 100, np.full(16, 5.0))
        out = store.access(DType.F32, 100, np.full(7, 6.0))  # shorter block
        np.testing.assert_array_equal(out, np.full(7, 6.0))

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            FunctionalDoppelganger(10, 4)


class TestBlockApproximator:
    def test_precise_region_passthrough(self, rng):
        approx = BlockApproximator()
        data = rng.uniform(0, 1, 256).astype(np.float32)
        out = approx.filter(data, region(approx=False))
        np.testing.assert_array_equal(out, data)

    def test_shape_and_dtype_preserved(self, rng):
        approx = BlockApproximator()
        data = rng.uniform(0, 100, (32, 16)).astype(np.float32)
        out = approx.filter(data, region())
        assert out.shape == data.shape
        assert out.dtype == data.dtype

    def test_identical_blocks_substituted(self):
        approx = BlockApproximator()
        data = np.concatenate([np.full(16, 10.0), np.full(16, 10.0005)]).astype(np.float32)
        out = approx.filter(data, region())
        np.testing.assert_allclose(out[16:], 10.0)
        assert approx.sharing_rate() > 0

    def test_integer_region_rounds(self, rng):
        approx = BlockApproximator()
        data = rng.integers(0, 255, 256).astype(np.uint8)
        out = approx.filter(data, region(dtype=DType.U8, vmax=255.0))
        assert out.dtype == np.uint8

    def test_trailing_partial_block(self, rng):
        approx = BlockApproximator()
        data = rng.uniform(0, 100, 19).astype(np.float32)  # 16 + 3 tail
        out = approx.filter(data, region())
        assert out.shape == data.shape

    def test_substitution_bounded_by_canonical_values(self, rng):
        approx = BlockApproximator()
        data = rng.uniform(0, 100, 4096).astype(np.float32)
        out = approx.filter(data, region())
        assert out.min() >= 0.0
        assert out.max() <= 100.0

    def test_smaller_data_array_fewer_hits(self, rng):
        data = rng.uniform(49.0, 51.0, 16 * 512).astype(np.float32)
        big = BlockApproximator(MapConfig(14), data_entries=4096)
        small = BlockApproximator(MapConfig(14), data_entries=16)
        big.filter(data, region())
        small.filter(data, region())
        assert small.store.evictions >= big.store.evictions


class TestIdentityApproximator:
    def test_passthrough(self, rng):
        ident = IdentityApproximator()
        data = rng.uniform(0, 1, 64)
        out = ident.filter(data, region())
        assert out is data
        assert ident.sharing_rate() == 0.0
