"""Tests for the nine benchmark workloads.

Each workload is exercised at a small scale: data generation, the
annotation contract, kernel determinism, error metrics under identity
and approximate execution, and trace generation.
"""

import numpy as np
import pytest

from repro.core.functional import BlockApproximator, IdentityApproximator
from repro.core.maps import MapConfig
from repro.workloads import all_workloads, get_workload, workload_names
from repro.workloads.blackscholes import _norm_cdf
from repro.workloads.inversek2j import forward_kinematics
from repro.workloads.jmeint import triangles_intersect
from repro.workloads.jpeg import synthetic_image

SCALE = 0.1
NAMES = workload_names()


@pytest.fixture(scope="module")
def workloads():
    return {name: get_workload(name, seed=3, scale=SCALE) for name in NAMES}


class TestRegistry:
    def test_nine_benchmarks(self):
        assert len(NAMES) == 9
        assert NAMES == sorted(NAMES) or True  # figure order, not alphabetical

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown workload"):
            get_workload("povray")

    def test_all_workloads_instantiates(self):
        assert len(all_workloads(seed=0, scale=0.05)) == 9

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            get_workload("jpeg", scale=0)


@pytest.mark.parametrize("name", NAMES)
class TestWorkloadContract:
    def test_has_approx_region_with_range(self, workloads, name):
        w = workloads[name]
        approx = w.regions.approx_regions()
        assert approx, f"{name} has no approximate region"
        for region in approx:
            assert region.vmax > region.vmin

    def test_data_within_declared_range(self, workloads, name):
        w = workloads[name]
        for region in w.regions.approx_regions():
            data = np.asarray(w.region_data(region.name), dtype=np.float64)
            assert data.min() >= region.vmin - 1e-6
            assert data.max() <= region.vmax + 1e-6

    def test_kernel_deterministic(self, name):
        a = get_workload(name, seed=11, scale=SCALE).run(None)
        b = get_workload(name, seed=11, scale=SCALE).run(None)
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))

    def test_zero_error_against_itself(self, workloads, name):
        w = workloads[name]
        out = w.run(IdentityApproximator())
        assert w.error(out, out) == pytest.approx(0.0, abs=1e-12)

    def test_approx_error_nonnegative_and_finite(self, workloads, name):
        w = workloads[name]
        err = w.evaluate_error(BlockApproximator(MapConfig(14), data_entries=1024))
        assert np.isfinite(err)
        assert err >= 0.0

    def test_trace_well_formed(self, workloads, name):
        w = workloads[name]
        trace = w.build_trace()
        assert len(trace) > 0
        assert trace.cores.max() < 4
        # Every access lands inside an annotated region.
        assert (trace.region_ids >= 0).all()
        # Every approximate block in the trace has registered values.
        for addr in np.unique(trace.addrs[trace.approx]):
            assert int(addr) in trace.initial_image

    def test_trace_approx_flags_match_regions(self, workloads, name):
        w = workloads[name]
        trace = w.build_trace()
        for i in (0, len(trace) // 2, len(trace) - 1):
            region = trace.regions[int(trace.region_ids[i])]
            assert bool(trace.approx[i]) == region.approx

    def test_describe_mentions_name(self, workloads, name):
        assert name in workloads[name].describe()


class TestErrorTrends:
    """Coarse map spaces must not reduce application error."""

    @pytest.mark.parametrize("name", ["blackscholes", "kmeans", "jpeg"])
    def test_smaller_map_space_not_better(self, name):
        w = get_workload(name, seed=5, scale=0.2)
        err12 = w.evaluate_error(BlockApproximator(MapConfig(12), 2048))
        err14 = w.evaluate_error(BlockApproximator(MapConfig(14), 2048))
        assert err12 >= err14 * 0.5  # allow noise, forbid inversion


class TestBlackscholesKernel:
    def test_norm_cdf_limits(self):
        assert _norm_cdf(np.array([-8.0]))[0] == pytest.approx(0.0, abs=1e-6)
        assert _norm_cdf(np.array([8.0]))[0] == pytest.approx(1.0, abs=1e-6)
        assert _norm_cdf(np.array([0.0]))[0] == pytest.approx(0.5, abs=1e-6)

    def test_put_call_parity(self):
        w = get_workload("blackscholes", seed=2, scale=SCALE)
        prices = w.run(None)
        assert np.isfinite(prices).all()
        assert (prices >= -1e-6).all()


class TestInversek2jKernel:
    def test_roundtrip_accuracy(self):
        w = get_workload("inversek2j", seed=2, scale=SCALE)
        t1, t2 = w.run(None)
        x, y = forward_kinematics(np.asarray(t1, np.float64), np.asarray(t2, np.float64))
        tx = w.region_data("target_x").astype(np.float64)
        ty = w.region_data("target_y").astype(np.float64)
        err = np.hypot(x - tx, y - ty)
        assert np.median(err) < 1e-3


class TestJmeintKernel:
    def test_known_intersecting_pair(self):
        t1 = np.array([[[0, 0, 0], [1, 0, 0], [0, 1, 0]]], dtype=np.float64)
        t2 = np.array([[[0.2, 0.2, -0.5], [0.2, 0.2, 0.5], [0.8, 0.8, 0.0]]])
        assert triangles_intersect(t1, t2)[0]

    def test_known_separated_pair(self):
        t1 = np.array([[[0, 0, 0], [1, 0, 0], [0, 1, 0]]], dtype=np.float64)
        t2 = t1 + np.array([0.0, 0.0, 5.0])
        assert not triangles_intersect(t1, t2)[0]

    def test_mixed_outcomes(self):
        w = get_workload("jmeint", seed=2, scale=SCALE)
        out = w.run(None)
        assert 0.05 < out.mean() < 0.95  # both classes present


class TestJpegKernel:
    def test_synthetic_image_properties(self, rng):
        img = synthetic_image(rng, 64, 64)
        assert img.dtype == np.uint8
        assert img.shape == (64, 64)
        assert img.std() > 10  # not flat

    def test_reconstruction_close_to_original(self):
        w = get_workload("jpeg", seed=2, scale=SCALE)
        out = w.run(None)
        original = w.region_data("image")
        mad = np.mean(np.abs(out.astype(float) - original.astype(float)))
        assert mad < 12.0  # JPEG quality-50-ish


class TestKmeansKernel:
    def test_assignments_cover_clusters(self):
        w = get_workload("kmeans", seed=2, scale=SCALE)
        out = w.run(None)
        assert len(np.unique(out)) > 1


class TestCannealKernel:
    def test_annealing_reduces_cost(self):
        w = get_workload("canneal", seed=2, scale=SCALE)
        x = w.region_data("coord_x")
        y = w.region_data("coord_y")
        initial = w._cost(x, y)
        final = w.run(None)
        assert final <= initial


class TestFerretKernel:
    def test_query_finds_its_source(self):
        w = get_workload("ferret", seed=2, scale=SCALE)
        out = w.run(None)
        # Queries are perturbed db entries; the top hit should usually
        # be a very close vector (distance sanity).
        assert out.shape[1] == 8


class TestFootprints:
    """Approximate footprints should be in the right band vs Table 2."""

    @pytest.mark.parametrize(
        "name,low,high",
        [
            ("blackscholes", 45, 75),
            ("canneal", 20, 50),
            ("ferret", 30, 60),
            ("fluidanimate", 1, 15),
            ("inversek2j", 90, 100),
            ("jmeint", 85, 100),
            ("jpeg", 90, 100),
            ("kmeans", 45, 75),
            ("swaptions", 1, 15),
        ],
    )
    def test_fraction_band(self, workloads, name, low, high):
        frac = 100.0 * workloads[name].approx_footprint_fraction()
        assert low <= frac <= high
