"""Tests for the Workload base-class machinery."""

import numpy as np
import pytest

from repro.trace.record import DType
from repro.workloads.base import BLOCK, HEAP_BASE, Workload


class _Toy(Workload):
    """Minimal concrete workload for base-class tests."""

    name = "toy"

    def _build(self):
        data = np.arange(100, dtype=np.float32)
        self._add_region("in", data, DType.F32, True, 0.0, 100.0)
        self._add_region("flags", np.zeros(10, np.int32), DType.I32, False)

    def run(self, approximator=None):
        return self.region_data("in").sum()

    def error(self, precise, approx):
        return abs(float(precise) - float(approx))

    def _emit_trace(self, builder, value_ids):
        self._emit_parallel_scan(builder, value_ids, "in", gap=4)


class TestRegionAllocation:
    def test_regions_block_aligned_and_padded(self):
        toy = _Toy(seed=0)
        region = toy.region("in")
        assert region.base % BLOCK == 0
        assert region.size % BLOCK == 0
        assert region.size >= 100 * 4

    def test_regions_start_at_heap_base(self):
        toy = _Toy(seed=0)
        assert toy.region("in").base == HEAP_BASE

    def test_guard_gap_between_regions(self):
        toy = _Toy(seed=0)
        a = toy.region("in")
        b = toy.region("flags")
        assert b.base >= a.end + BLOCK

    def test_region_lookup_by_name(self):
        toy = _Toy(seed=0)
        with pytest.raises(KeyError):
            toy.region("nope")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            _Toy(seed=0, scale=-1)

    def test_scaled_minimum(self):
        toy = _Toy(seed=0, scale=1e-9)
        assert toy._scaled(100, minimum=5) == 5


class TestTraceGeneration:
    def test_trace_covers_padded_blocks(self):
        toy = _Toy(seed=0)
        trace = toy.build_trace()
        region = toy.region("in")
        # Every block of the region has values in the initial image.
        for addr in region.block_addrs():
            assert addr in trace.initial_image

    def test_parallel_scan_interleaves_cores(self):
        toy = _Toy(seed=0)
        trace = toy.build_trace()
        assert set(trace.cores.tolist()) <= {0, 1, 2, 3}

    def test_evaluate_error_identity_zero(self):
        toy = _Toy(seed=0)
        from repro.core.functional import IdentityApproximator

        assert toy.evaluate_error(IdentityApproximator()) == 0.0

    def test_refresh_outputs_default_noop(self):
        toy = _Toy(seed=0)
        before = toy.region_data("in").copy()
        toy.refresh_outputs()
        np.testing.assert_array_equal(toy.region_data("in"), before)

    def test_describe_format(self):
        text = _Toy(seed=0).describe()
        assert "toy" in text
        assert "approximate" in text
