"""Protocol tests for the Doppelgänger cache (Secs. 3.2-3.7)."""

import numpy as np
import pytest

from repro.core.config import DoppelgangerConfig
from repro.core.doppelganger import DoppelgangerCache
from repro.core.maps import MapConfig
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap

RID = 0


def make_cache(tag_entries=64, tag_ways=4, data_fraction=0.25, bits=14):
    regions = RegionMap(
        [Region("r", 0, 1 << 20, DType.F32, approx=True, vmin=0.0, vmax=100.0)]
    )
    cfg = DoppelgangerConfig(
        tag_entries=tag_entries,
        tag_ways=tag_ways,
        data_fraction=data_fraction,
        data_ways=4,
        map=MapConfig(bits),
    )
    return DoppelgangerCache(cfg, regions=regions)


def block(value, spread=0.0, elems=16):
    if spread:
        return np.linspace(value - spread, value + spread, elems)
    return np.full(elems, float(value))


class TestLookup:
    def test_miss_on_empty(self):
        cache = make_cache()
        assert not cache.lookup(0x40).hit

    def test_hit_after_insert(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(10))
        assert cache.lookup(0x40).hit

    def test_lookup_counts_two_tag_lookups(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(10))
        before_mtag = cache.stats.mtag_lookups
        cache.lookup(0x40)
        assert cache.stats.mtag_lookups == before_mtag + 1

    def test_write_lookup_sets_owner(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(10), core=0)
        cache.lookup(0x40, is_write=True, core=2)
        entry = cache.tags.probe(0x40)
        assert entry.sharers == 1 << 2


class TestInsertSharing:
    def test_similar_blocks_share_data_entry(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(50.0))
        cache.insert(0x80, RID, block(50.0001))
        assert cache.data.occupied == 1
        assert cache.stats.shared_insertions == 1

    def test_dissimilar_blocks_get_own_entries(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(10.0))
        cache.insert(0x80, RID, block(90.0))
        assert cache.data.occupied == 2

    def test_tag_list_grows_at_head(self):
        cache = make_cache()
        for i in range(3):
            cache.insert(0x40 * (i + 1), RID, block(50.0))
        data_entry = cache.data.resident()[0]
        addrs = [t.addr for t in cache.tags.iter_list(data_entry.head)]
        assert addrs == [0xC0, 0x80, 0x40]  # newest first

    def test_insert_resident_raises(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(1))
        with pytest.raises(ValueError):
            cache.insert(0x40, RID, block(1))

    def test_canonical_value_preserved(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(50.0), value_id=11)
        cache.insert(0x80, RID, block(50.0001), value_id=22)
        # Both addresses resolve to the first block's values.
        assert cache.resident_value_id(0x40) == 11
        assert cache.resident_value_id(0x80) == 11

    def test_average_and_range_both_matter(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(50.0))
        cache.insert(0x80, RID, block(50.0, spread=30.0))  # same avg, wide range
        assert cache.data.occupied == 2

    def test_invariants_after_inserts(self, rng=np.random.default_rng(3)):
        cache = make_cache()
        for i in range(40):
            cache.insert(i * 64, RID, rng.uniform(0, 100, 16))
        cache.check_invariants()


class TestWrites:
    def test_same_map_write_sets_dirty_only(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(50.0))
        outcome = cache.writeback(0x40, RID, block(50.0001))
        assert outcome.hit
        assert cache.tags.probe(0x40).dirty
        assert cache.data.occupied == 1
        assert cache.stats.write_same_map == 1

    def test_new_map_moves_tag_to_existing_block(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(10.0), value_id=1)
        cache.insert(0x80, RID, block(90.0), value_id=2)
        cache.writeback(0x40, RID, block(90.0))
        assert cache.stats.write_moved == 1
        # Old entry freed (0x40 was its only tag); both tags now share.
        assert cache.data.occupied == 1
        assert cache.resident_value_id(0x40) == 2  # modifications dropped
        cache.check_invariants()

    def test_new_map_allocates_when_absent(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(10.0))
        cache.writeback(0x40, RID, block(90.0), value_id=5)
        assert cache.data.occupied == 1
        assert cache.resident_value_id(0x40) == 5
        cache.check_invariants()

    def test_move_from_shared_list_keeps_entry(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(10.0))
        cache.insert(0x80, RID, block(10.0))
        cache.writeback(0x80, RID, block(90.0))
        assert cache.data.occupied == 2  # old entry still has 0x40
        assert cache.lookup(0x40).hit
        cache.check_invariants()

    def test_writeback_nonresident_inserts_dirty(self):
        cache = make_cache()
        outcome = cache.writeback(0x40, RID, block(10.0))
        assert not outcome.hit
        assert cache.tags.probe(0x40).dirty

    def test_dirty_tracked_per_tag_not_per_data(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(50.0))
        cache.insert(0x80, RID, block(50.0))
        cache.writeback(0x40, RID, block(50.0))
        assert cache.tags.probe(0x40).dirty
        assert not cache.tags.probe(0x80).dirty


class TestReplacements:
    def test_last_tag_eviction_frees_data(self):
        cache = make_cache(tag_entries=16, tag_ways=4)
        stride = cache.tags.num_sets * 64
        for i in range(4):
            cache.insert(i * stride, RID, block(10.0 + 20 * i))
        occupied_before = cache.data.occupied
        cache.insert(4 * stride, RID, block(95.0))
        # Victim tag 0 was the sole tag of its entry -> entry freed.
        assert cache.data.occupied == occupied_before  # one freed, one added
        cache.check_invariants()

    def test_sibling_tag_eviction_keeps_data(self):
        cache = make_cache(tag_entries=16, tag_ways=4)
        stride = cache.tags.num_sets * 64
        # Two tags in the same tag set share one data entry.
        cache.insert(0, RID, block(50.0))
        cache.insert(stride, RID, block(50.0))
        cache.insert(2 * stride, RID, block(10.0))
        cache.insert(3 * stride, RID, block(90.0))
        cache.insert(4 * stride, RID, block(70.0))  # evicts tag 0
        assert cache.lookup(stride).hit  # sibling survives
        cache.check_invariants()

    def test_data_eviction_invalidates_all_tags(self):
        # Data array with a single set: 4 entries, 4 ways.
        cache = make_cache(tag_entries=64, tag_ways=4, data_fraction=1 / 16)
        assert cache.data.num_sets == 1
        cache.insert(0x0, RID, block(10.0))
        cache.insert(0x400, RID, block(10.0))  # shares the 10.0 entry
        for i, v in enumerate([30.0, 50.0, 70.0], start=1):
            cache.insert(i * 64, RID, block(v))
        # The 10.0 entry is now LRU and carries two tags; a fifth
        # distinct map evicts it and must invalidate both.
        outcome = cache.insert(0x800, RID, block(90.0))
        assert set(outcome.back_invalidations) == {0x0, 0x400}
        assert not cache.lookup(0x0).hit
        assert not cache.lookup(0x400).hit
        cache.check_invariants()

    def test_data_eviction_writes_back_dirty_tags(self):
        cache = make_cache(tag_entries=64, tag_ways=4, data_fraction=1 / 16)
        for i, v in enumerate([10.0, 30.0, 50.0, 70.0]):
            cache.insert(i * 64, RID, block(v), dirty=(i == 0))
        outcome = cache.insert(0x800, RID, block(90.0))
        assert 0 in outcome.writebacks
        assert cache.stats.dirty_tags_evicted == 1

    def test_invalidate_resident(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(10.0))
        outcome = cache.invalidate(0x40)
        assert outcome.hit
        assert not cache.lookup(0x40).hit
        assert cache.data.occupied == 0

    def test_invalidate_missing(self):
        cache = make_cache()
        assert not cache.invalidate(0x40).hit


class TestStatistics:
    def test_tags_per_entry_histogram(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(50.0))
        cache.insert(0x80, RID, block(50.0))
        cache.insert(0xC0, RID, block(10.0))
        hist = cache.tags_per_entry_histogram()
        assert hist == {2: 1, 1: 1}
        assert cache.current_avg_tags_per_entry() == pytest.approx(1.5)

    def test_dirty_eviction_fraction(self):
        cache = make_cache(tag_entries=64, tag_ways=4, data_fraction=1 / 16)
        for i, v in enumerate([10.0, 30.0, 50.0, 70.0]):
            cache.insert(i * 64, RID, block(v), dirty=(i % 2 == 0))
        cache.insert(0x800, RID, block(90.0))  # evicts one entry
        frac = cache.stats.dirty_eviction_fraction
        assert 0.0 <= frac <= 1.0

    def test_map_generation_count(self):
        cache = make_cache()
        cache.insert(0x40, RID, block(10.0))
        cache.writeback(0x40, RID, block(11.0))
        assert cache.stats.map_generations == 2
