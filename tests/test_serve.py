"""Tests for the simulation-as-a-service subsystem (``repro serve``).

Covers the job model, the SSE broker, the queue's full job lifecycle
(submit → running → done / cancelled / failed), restart-resume from
the journal, warm-cache reuse across jobs, and an HTTP end-to-end
round trip through :class:`~repro.client.ServeClient`.
"""

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.serve.cache import WarmCache
from repro.serve.jobs import TERMINAL, Job, JobSpec, JobState
from repro.serve.queue import JobQueue
from repro.serve.sse import CLOSE, EventBroker, format_sse, keep_alive

SMALL = {"experiments": ["table2"], "workloads": ["swaptions"], "scale": 0.05, "seed": 3}


def wait_for(predicate, timeout=120.0, interval=0.05):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    pytest.fail("condition not reached within timeout")


# ----------------------------------------------------------------- job model


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec.from_dict(
            {
                "experiments": ["table2", "figure7"],
                "workloads": ["swaptions"],
                "seed": 11,
                "scale": 0.25,
                "jobs": 2,
                "retries": 1,
                "timeout": 30.0,
                "strategy_options": {"error_budget": 0.05},
                "faults": {"seed": 1, "read_rate": 1e-4, "stuck_bits": 0},
            }
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec
        assert spec.fault_config() is not None

    def test_defaults(self):
        spec = JobSpec.from_dict({"experiments": ["table2"]})
        assert spec.jobs == 1
        assert spec.retries == 0
        assert spec.fault_config() is None

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"experiments": []},
            {"experiments": "table2"},
            {"experiments": ["table2"], "bogus_field": 1},
            {"experiments": ["table2"], "jobs": 0},
            {"experiments": ["table2"], "retries": -1},
            {"experiments": ["table2"], "timeout": 0},
            {"experiments": ["table2"], "strategy_options": "nope"},
            {"experiments": ["table2"], "faults": [1]},
        ],
    )
    def test_invalid_specs_rejected(self, body):
        with pytest.raises(ConfigError):
            JobSpec.from_dict(body)

    def test_job_row_round_trip(self):
        job = Job(spec=JobSpec(experiments=["table2"]))
        job.state = JobState.DONE
        job.run_id = 7
        back = Job.from_row(job.row(daemon="test"))
        assert back.id == job.id
        assert back.state == JobState.DONE
        assert back.run_id == 7
        assert back.spec == job.spec

    def test_terminal_states(self):
        assert TERMINAL == {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
        job = Job(spec=JobSpec(experiments=["table2"]))
        assert not job.terminal
        job.state = JobState.FAILED
        assert job.terminal


# ---------------------------------------------------------------- SSE broker


class TestEventBroker:
    def test_publish_replay_close(self):
        broker = EventBroker()
        broker.publish("j1", {"kind": "state", "state": "queued"})
        broker.publish("j1", {"kind": "state", "state": "running"})
        sub = broker.subscribe("j1", replay=True)
        first = sub.get_nowait()
        assert first["state"] == "queued"
        assert first["seq"] == 1
        assert sub.get_nowait()["state"] == "running"
        broker.publish("j1", {"kind": "done"})
        broker.close("j1")
        assert sub.get(timeout=1)["kind"] == "done"
        assert sub.get(timeout=1) is CLOSE
        broker.unsubscribe("j1", sub)

    def test_subscribe_after_close_replays_then_closes(self):
        broker = EventBroker()
        broker.publish("j1", {"kind": "done"})
        broker.close("j1")
        sub = broker.subscribe("j1", replay=True)
        assert sub.get_nowait()["kind"] == "done"
        assert sub.get_nowait() is CLOSE

    def test_format_sse_wire_shape(self):
        chunk = format_sse({"kind": "state", "seq": 4, "state": "running"})
        text = chunk.decode("utf-8")
        assert text.startswith("event: state\nid: 4\ndata: ")
        assert text.endswith("\n\n")
        assert keep_alive().startswith(b":")


# -------------------------------------------------------------- job lifecycle


@pytest.fixture
def queue(tmp_path):
    """A started single-worker queue on a per-test store."""
    q = JobQueue(str(tmp_path / "serve.db"), workers=1)
    q.start()
    yield q
    q.shutdown(requeue_running=False)


class TestJobLifecycle:
    def test_submit_to_done_records_history(self, queue):
        job = queue.submit(JobSpec.from_dict(SMALL))
        assert job.state == JobState.QUEUED
        final = wait_for(lambda: queue.get(job.id)["state"] in TERMINAL and queue.get(job.id))
        assert final["state"] == JobState.DONE
        assert final["run_id"] is not None
        runs = queue.store.list_runs()
        assert any(r["id"] == final["run_id"] and r["finished"] for r in runs)
        kinds = [e.get("kind") for e in queue.broker.history(job.id)]
        assert kinds[0] == "state"
        assert "warm_cache" in kinds
        assert kinds[-1] == "done"

    def test_submit_validates_names(self, queue):
        with pytest.raises(ConfigError):
            queue.submit(JobSpec(experiments=["no-such-experiment"]))
        with pytest.raises(ConfigError):
            queue.submit(JobSpec(experiments=["table2"], workloads=["no-such-wl"]))

    def test_cancel_queued_job(self, tmp_path):
        q = JobQueue(str(tmp_path / "serve.db"), workers=1)  # workers not started
        try:
            job = q.submit(JobSpec.from_dict(SMALL))
            out = q.cancel(job.id)
            assert out.state == JobState.CANCELLED
            assert out.error == "cancelled before start"
            assert q.store.job_row(job.id)["state"] == JobState.CANCELLED
            assert q.cancel(job.id).state == JobState.CANCELLED  # idempotent
            assert q.cancel("missing") is None
        finally:
            q.shutdown()

    def test_cancel_running_job(self, queue):
        slow = {"experiments": ["table2"], "seed": 3, "jobs": 2}
        job = queue.submit(JobSpec.from_dict(slow))
        wait_for(lambda: queue.get(job.id)["state"] == JobState.RUNNING)
        time.sleep(0.5)
        queue.cancel(job.id)
        final = wait_for(lambda: queue.get(job.id)["state"] in TERMINAL and queue.get(job.id))
        assert final["state"] == JobState.CANCELLED
        assert "cancelled" in final["error"]

    def test_failed_job(self, queue, monkeypatch):
        import repro.harness.strategy as strategy_mod

        def boom(*args, **kwargs):
            raise RuntimeError("driver exploded")

        monkeypatch.setattr(strategy_mod, "run_strategies", boom)
        job = queue.submit(JobSpec.from_dict(SMALL))
        final = wait_for(lambda: queue.get(job.id)["state"] in TERMINAL and queue.get(job.id))
        assert final["state"] == JobState.FAILED
        assert "driver exploded" in final["error"]

    def test_queue_positions_and_counts(self, tmp_path):
        q = JobQueue(str(tmp_path / "serve.db"), workers=1)  # not started
        try:
            first = q.submit(JobSpec.from_dict(SMALL))
            second = q.submit(JobSpec.from_dict(SMALL))
            assert q.get(first.id)["position"] == 0
            assert q.get(second.id)["position"] == 1
            assert q.counts() == {JobState.QUEUED: 2}
            listed = q.list()
            assert [j["id"] for j in listed] == [second.id, first.id]
        finally:
            q.shutdown()

    def test_restart_resume(self, tmp_path):
        store = str(tmp_path / "serve.db")
        q1 = JobQueue(store, workers=1)  # never started: job stays queued
        job = q1.submit(JobSpec.from_dict(SMALL))
        q1.shutdown()

        q2 = JobQueue(store, workers=1)
        try:
            assert q2.recover() == 1
            recovered = q2.get(job.id)
            assert recovered["state"] == JobState.QUEUED
            assert recovered["recovered"] is True
            q2.start()
            final = wait_for(lambda: q2.get(job.id)["state"] in TERMINAL and q2.get(job.id))
            assert final["state"] == JobState.DONE
        finally:
            q2.shutdown(requeue_running=False)

    def test_journal_visible_across_instances(self, tmp_path):
        store = str(tmp_path / "serve.db")
        q1 = JobQueue(store, workers=1)
        q1.start()
        job = q1.submit(JobSpec.from_dict(SMALL))
        wait_for(lambda: q1.get(job.id)["state"] in TERMINAL)
        q1.shutdown()

        q2 = JobQueue(store, workers=1)
        try:
            assert q2.get(job.id)["state"] == JobState.DONE
            assert job.id in [j["id"] for j in q2.list()]
        finally:
            q2.shutdown()


# ----------------------------------------------------------------- warm cache


class TestWarmCache:
    def test_second_identical_job_hits(self, queue):
        first = queue.submit(JobSpec.from_dict(SMALL))
        wait_for(lambda: queue.get(first.id)["state"] in TERMINAL)
        assert queue.cache.stats()["traces"] == 1

        second = queue.submit(JobSpec.from_dict(SMALL))
        wait_for(lambda: queue.get(second.id)["state"] in TERMINAL)
        stats = queue.cache.stats()
        assert stats["trace_hits"] >= 1
        events = queue.broker.history(second.id)
        warm = next(e for e in events if e.get("kind") == "warm_cache")
        assert warm["traces"] == 1
        assert warm["runs"] >= 1

    def test_seeding_scoped_to_planned_specs(self):
        cache = WarmCache()
        spec = JobSpec.from_dict(SMALL)
        ctx, seeded = cache.build_context(spec)
        assert seeded == {"traces": 0, "runs": 0, "errors": 0}
        # A context absorbed for one engine must not leak to another.
        trace = ctx.trace("swaptions")
        assert trace is not None
        cache.absorb(ctx)
        ctx2, seeded2 = cache.build_context(spec)
        assert seeded2["traces"] == 1
        assert ctx2.trace("swaptions") is trace

    def test_different_seed_misses(self):
        cache = WarmCache()
        spec = JobSpec.from_dict(SMALL)
        ctx, _ = cache.build_context(spec)
        ctx.trace("swaptions")
        cache.absorb(ctx)
        other = JobSpec.from_dict({**SMALL, "seed": 4})
        _, seeded = cache.build_context(other)
        assert seeded["traces"] == 0
        assert cache.stats()["trace_misses"] >= 1


# ------------------------------------------------------------ HTTP end-to-end


class TestHttpEndToEnd:
    @pytest.fixture
    def daemon(self, tmp_path):
        """A background daemon on an ephemeral port."""
        from repro.serve.server import ServeDaemon

        d = ServeDaemon(
            "127.0.0.1", 0, store_path=str(tmp_path / "serve.db"), workers=1
        )
        d.start_background()
        yield d
        d.stop(requeue_running=False)

    def test_full_round_trip(self, daemon):
        from repro.client import ServeClient

        client = ServeClient(daemon.url)
        health = client.healthz()
        assert health["status"] == "ok"

        job = client.submit(SMALL)
        final = client.wait(job["id"], timeout=180)
        assert final["state"] == "done"
        assert final["run_id"] is not None

        kinds = [e.get("kind") for e in client.events(job["id"])]
        assert "warm_cache" in kinds
        assert kinds[-1] == "done"

        assert any(j["id"] == job["id"] for j in client.jobs())
        assert client.job(job["id"])["state"] == "done"

    def test_error_responses(self, daemon):
        from repro.client import ServeClient

        client = ServeClient(daemon.url)
        with pytest.raises(ConfigError, match="no such job"):
            client.job("missing")
        with pytest.raises(ConfigError, match="no such job"):
            client.cancel("missing")
        with pytest.raises(ConfigError):
            client.submit({"experiments": ["no-such-experiment"]})
        with pytest.raises(ConfigError):
            client.submit({"experiments": ["table2"], "bogus": 1})

    def test_sse_stream_live(self, daemon):
        from repro.client import ServeClient

        client = ServeClient(daemon.url)
        job = client.submit(SMALL)
        seen = []
        reader = threading.Thread(
            target=lambda: seen.extend(client.events(job["id"])), daemon=True
        )
        reader.start()
        reader.join(timeout=180)
        assert not reader.is_alive()
        assert [e["kind"] for e in seen if e["kind"] in TERMINAL] == ["done"]
