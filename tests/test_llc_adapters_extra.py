"""Additional LLC-adapter tests: energy events, miss counting, routing."""

import numpy as np
import pytest

from repro.core.config import DoppelgangerConfig, UniDoppelgangerConfig
from repro.core.maps import MapConfig
from repro.hierarchy.llc import BaselineLLC, SplitDoppelgangerLLC, UnifiedDoppelgangerLLC
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap


def regions():
    return RegionMap(
        [
            Region("a", 0, 1 << 20, DType.F32, approx=True, vmin=0, vmax=100),
            Region("p", 1 << 21, 1 << 20, DType.I32, approx=False),
        ]
    )


class TestEnergyEventCounting:
    def test_baseline_tag_and_data_counts(self):
        llc = BaselineLLC()
        llc.read(0, 0, False, -1)       # miss: tag lookup only
        llc.fill(0, 0, False, -1)       # fill: data write
        llc.read(0, 0, False, -1)       # hit: tag + data read
        events = llc.energy_events()
        assert events[("baseline_llc", "tag")] == 2
        assert events[("baseline_llc", "data")] == 2  # fill write + hit read

    def test_split_map_generation_counting(self):
        regs = regions()
        llc = SplitDoppelgangerLLC(regions=regs)
        llc.fill(0, 0, True, 0, values=np.full(16, 5.0))
        llc.handle_writeback(0, 0, True, 0, values=np.full(16, 6.0))
        events = llc.energy_events()
        assert events[("map_generation", "op")] == 2

    def test_unified_events_cover_both_kinds(self):
        regs = regions()
        llc = UnifiedDoppelgangerLLC(regions=regs)
        llc.fill(0, 0, True, 0, values=np.full(16, 5.0))
        llc.fill(1 << 21, 0, False, 1)
        events = llc.energy_events()
        assert events[("uni_tag", "tag")] >= 0
        assert events[("uni_data", "data")] == 2  # both fills wrote data
        assert events[("map_generation", "op")] == 1  # precise skips hashing


class TestMissCounting:
    def test_split_counts_both_halves(self):
        regs = regions()
        llc = SplitDoppelgangerLLC(regions=regs)
        llc.read(0, 0, True, 0)          # approx miss
        llc.read(1 << 21, 0, False, 1)   # precise miss
        assert llc.miss_count() == 2

    def test_unified_counts_once(self):
        regs = regions()
        llc = UnifiedDoppelgangerLLC(regions=regs)
        llc.read(0, 0, True, 0)
        llc.read(0, 0, True, 0)
        assert llc.miss_count() == 2
        llc.fill(0, 0, True, 0, values=np.full(16, 5.0))
        llc.read(0, 0, True, 0)
        assert llc.miss_count() == 2  # the hit adds nothing


class TestRouting:
    def test_precise_data_never_reaches_dopp(self):
        regs = regions()
        llc = SplitDoppelgangerLLC(regions=regs)
        llc.fill(1 << 21, 0, False, 1)
        llc.read(1 << 21, 0, False, 1)
        llc.handle_writeback(1 << 21, 0, False, 1)
        assert llc.dopp.stats.accesses == 0
        assert llc.dopp.stats.insertions == 0

    def test_approx_data_never_reaches_precise(self):
        regs = regions()
        llc = SplitDoppelgangerLLC(regions=regs)
        llc.fill(0, 0, True, 0, values=np.full(16, 5.0))
        llc.read(0, 0, True, 0)
        assert llc.precise.stats.accesses == 0
        assert llc.precise.occupancy() == 0

    def test_config_reflected_in_geometry(self):
        cfg = DoppelgangerConfig(data_fraction=0.125, map=MapConfig(12))
        llc = SplitDoppelgangerLLC(cfg)
        assert llc.dopp.data.num_entries == 2048
        assert llc.dopp.maps.config.bits == 12

    def test_uni_config_reflected(self):
        cfg = UniDoppelgangerConfig(data_fraction=0.25)
        llc = UnifiedDoppelgangerLLC(cfg)
        assert llc.uni.data.num_entries == 8192
