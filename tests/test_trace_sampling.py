"""Tests for tracer sampling (``--trace-sample N``)."""

import pytest

from repro.obs import Observability, RingBufferSink, Tracer


class TestTracerSampling:
    def test_default_emits_everything(self):
        ring = RingBufferSink(100)
        tracer = Tracer([ring])
        for _ in range(10):
            tracer.emit("tag_insert", addr=1)
        assert ring.total_emitted == 10

    def test_one_in_n(self):
        ring = RingBufferSink(1000)
        tracer = Tracer([ring], sample=10)
        for _ in range(100):
            tracer.emit("tag_insert", addr=1)
        assert ring.total_emitted == 10

    def test_first_event_always_emitted(self):
        ring = RingBufferSink(10)
        tracer = Tracer([ring], sample=1000)
        tracer.emit("tag_insert", addr=1)
        assert ring.total_emitted == 1

    def test_seq_counts_all_events(self):
        ring = RingBufferSink(100)
        tracer = Tracer([ring], sample=3)
        for _ in range(9):
            tracer.emit("tag_insert", addr=1)
        assert [e.seq for e in ring.events] == [1, 4, 7]

    def test_sampling_spans_kinds(self):
        # The 1-in-N stream is global, not per-kind: alternating kinds
        # under sample=2 keeps only one of them.
        ring = RingBufferSink(100)
        tracer = Tracer([ring], sample=2)
        for i in range(10):
            tracer.emit("tag_insert" if i % 2 == 0 else "tag_move", addr=i)
        assert {e.kind for e in ring.events} == {"tag_insert"}

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample=0)

    def test_observability_threads_sample(self):
        obs = Observability(enabled=True, ring_capacity=64, trace_sample=4)
        assert obs.tracer.sample == 4
        for _ in range(8):
            obs.tracer.emit("tag_insert", addr=1)
        assert obs.ring.total_emitted == 2
