"""Tests for similarity and storage-savings analyses."""

import numpy as np
import pytest

from repro.analysis.similarity import (
    blocks_similar,
    greedy_similarity_clusters,
    sweep_thresholds,
    threshold_storage_savings,
)
from repro.analysis.storage import (
    LLCSnapshot,
    bdi_savings,
    dedup_savings,
    doppelganger_bdi_savings,
    doppelganger_savings,
    snapshot_from_workload,
)
from repro.core.maps import MapConfig
from repro.trace.record import DType
from repro.trace.region import Region
from repro.workloads import get_workload


def region(vmin=0.0, vmax=100.0, dtype=DType.F32):
    return Region("r", 0, 1 << 16, dtype, approx=True, vmin=vmin, vmax=vmax)


class TestBlocksSimilar:
    def test_identical(self):
        a = np.full(16, 5.0)
        assert blocks_similar(a, a, 0.0, 100.0)

    def test_paper_fig1_blocks(self):
        # Fig. 1b: blocks 1 and 2 similar at T=1%, block 3 not.
        b1 = np.array([92, 131, 183, 91, 132, 186], dtype=float)
        b2 = np.array([90, 131, 185, 93, 133, 184], dtype=float)
        b3 = np.array([35, 31, 29, 43, 38, 37], dtype=float)
        assert blocks_similar(b1, b2, 0.01, 255.0)
        assert not blocks_similar(b1, b3, 0.01, 255.0)
        assert not blocks_similar(b1, b2, 0.0, 255.0)

    def test_single_outlier_disqualifies(self):
        # Sec. 2: one element pair beyond T disqualifies the block.
        a = np.full(16, 5.0)
        b = a.copy()
        b[7] = 50.0
        assert not blocks_similar(a, b, 0.01, 100.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            blocks_similar(np.zeros(4), np.zeros(5), 0.1, 1.0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            blocks_similar(np.zeros(4), np.zeros(4), 0.1, 0.0)


class TestGreedyClustering:
    def test_all_identical_one_cluster(self):
        blocks = np.tile(np.full(16, 5.0), (10, 1))
        assignments = greedy_similarity_clusters(blocks, 0.01, 100.0)
        assert (assignments == 0).all()

    def test_distinct_blocks_distinct_clusters(self):
        blocks = np.stack([np.full(16, v) for v in (0.0, 50.0, 100.0)])
        assignments = greedy_similarity_clusters(blocks, 0.01, 100.0)
        assert len(set(assignments)) == 3

    def test_first_block_is_leader(self):
        blocks = np.stack([np.full(16, 5.0), np.full(16, 5.5)])
        assignments = greedy_similarity_clusters(blocks, 0.01, 100.0)
        assert list(assignments) == [0, 0]

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            greedy_similarity_clusters(np.zeros(16), 0.1, 1.0)


class TestThresholdSavings:
    def test_zero_threshold_is_exact_dedup(self):
        blocks = np.vstack([np.full(16, 1.0)] * 4)
        assert threshold_storage_savings(blocks, 0.0, 100.0) == pytest.approx(0.75)

    def test_monotone_in_threshold(self, rng):
        blocks = rng.uniform(0, 100, (200, 16))
        sweep = sweep_thresholds(blocks, 100.0)
        values = list(sweep.values())
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_empty(self):
        assert threshold_storage_savings(np.zeros((0, 16)), 0.1, 1.0) == 0.0

    def test_full_threshold_merges_everything(self, rng):
        blocks = rng.uniform(40, 60, (50, 16))
        assert threshold_storage_savings(blocks, 1.0, 100.0) == pytest.approx(1 - 1 / 50)


class TestSnapshot:
    def make_snapshot(self, blocks, reg=None):
        snap = LLCSnapshot()
        reg = reg or region()
        for b in blocks:
            snap.add(0, reg, b)
        return snap

    def test_rejects_precise_region(self):
        snap = LLCSnapshot()
        precise = Region("p", 0, 64, DType.I32, approx=False)
        with pytest.raises(ValueError):
            snap.add(0, precise, np.zeros(16))

    def test_groups_and_len(self, rng):
        snap = self.make_snapshot(rng.uniform(0, 100, (10, 16)))
        assert len(snap) == 10
        groups = list(snap.groups())
        assert len(groups) == 1
        assert groups[0][1].shape == (10, 16)

    def test_ragged_tails_grouped_by_length(self, rng):
        snap = LLCSnapshot()
        reg = region()
        snap.add(0, reg, rng.uniform(0, 100, 16))
        snap.add(0, reg, rng.uniform(0, 100, 7))
        shapes = sorted(m.shape for _, m in snap.groups())
        assert shapes == [(1, 7), (1, 16)]

    def test_snapshot_from_workload(self):
        w = get_workload("kmeans", seed=1, scale=0.05)
        snap = snapshot_from_workload(w)
        assert len(snap) > 0


class TestSavingsMetrics:
    def test_doppelganger_savings_identical_blocks(self):
        snap = LLCSnapshot()
        reg = region()
        for _ in range(8):
            snap.add(0, reg, np.full(16, 42.0))
        assert doppelganger_savings(snap, MapConfig(14)) == pytest.approx(1 - 1 / 8)

    def test_doppelganger_savings_grows_with_smaller_map(self, rng):
        snap = LLCSnapshot()
        reg = region()
        for b in rng.uniform(0, 100, (500, 16)):
            snap.add(0, reg, b)
        s12 = doppelganger_savings(snap, MapConfig(12))
        s14 = doppelganger_savings(snap, MapConfig(14))
        assert s12 >= s14

    def test_dedup_requires_exact(self, rng):
        snap = LLCSnapshot()
        reg = region()
        base = rng.uniform(0, 100, 16)
        snap.add(0, reg, base)
        snap.add(0, reg, base + 1e-9)
        assert dedup_savings(snap) == 0.0

    def test_bdi_on_integer_region(self, rng):
        # canneal-like i32 grid coordinates with bounded in-block range:
        # the case the paper's Fig. 8 highlights as BdI-friendly.
        snap = LLCSnapshot()
        reg = region(vmax=4096.0, dtype=DType.I32)
        for _ in range(10):
            base = float(rng.integers(0, 3800))
            snap.add(0, reg, base + rng.integers(0, 64, 16))
        assert bdi_savings(snap) > 0.3

    def test_bdi_weak_on_noisy_bytes(self, rng):
        # Byte-packed segments defeat delta encoding on noisy u8 data.
        snap = LLCSnapshot()
        reg = region(vmax=255.0, dtype=DType.U8)
        for _ in range(10):
            base = float(rng.integers(0, 200))
            snap.add(0, reg, base + rng.integers(0, 20, 64))
        assert bdi_savings(snap) < 0.3

    def test_combined_at_least_dopp(self, rng):
        snap = LLCSnapshot()
        reg = region(vmax=255.0, dtype=DType.U8)
        for _ in range(50):
            base = float(rng.integers(0, 200))
            snap.add(0, reg, base + rng.integers(0, 10, 64))
        dopp = doppelganger_savings(snap, MapConfig(14))
        both = doppelganger_bdi_savings(snap, MapConfig(14))
        assert both >= dopp - 1e-9

    def test_empty_snapshot_zero(self):
        snap = LLCSnapshot()
        assert doppelganger_savings(snap) == 0.0
        assert dedup_savings(snap) == 0.0
        assert doppelganger_bdi_savings(snap) == 0.0


class TestWholeLLCSavings:
    def test_composition_weights(self):
        from repro.analysis.storage import whole_llc_savings

        w = get_workload("kmeans", seed=1, scale=0.05)
        result = whole_llc_savings(w)
        assert 0.0 <= result["approx_savings"] <= 1.0
        assert 0.0 <= result["precise_savings"] <= 1.0
        total = result["approx_bytes"] + result["precise_bytes"]
        expected = (
            result["approx_savings"] * result["approx_bytes"]
            + result["precise_savings"] * result["precise_bytes"]
        ) / total
        assert result["combined_savings"] == pytest.approx(expected)

    def test_mostly_approx_workload_tracks_dopp_side(self):
        from repro.analysis.storage import whole_llc_savings

        w = get_workload("inversek2j", seed=1, scale=0.05)
        result = whole_llc_savings(w)
        assert result["approx_bytes"] > result["precise_bytes"]
        assert result["combined_savings"] == pytest.approx(
            result["approx_savings"], abs=0.05
        )
