"""Concurrent-access tests for the run-history store.

The serve daemon hits the sqlite store from several threads (HTTP
handlers, queue workers) while each executing job opens its *own*
connection to record history — so the store must survive a writer
thread racing reader processes without ``database is locked`` errors.
WAL journaling plus ``busy_timeout`` plus the per-store lock make that
hold; these tests would catch a regression on any of the three.
"""

import subprocess
import sys
import threading
from pathlib import Path

import repro
from repro.obs.store import RunStore
from repro.serve.jobs import Job, JobSpec, JobState

READER = """
import sys
from repro.obs.store import RunStore

store = RunStore(sys.argv[1])
for _ in range(40):
    store.list_runs()
    store.load_jobs()
store.close()
print("ok")
"""


def _src_path() -> str:
    """The ``src`` directory for subprocess PYTHONPATH."""
    return str(Path(repro.__file__).resolve().parent.parent)


def _writer(store_path: str, n: int, errors: list) -> None:
    """Append ``n`` runs + job rows on a second connection."""
    try:
        store = RunStore(store_path)
        for k in range(n):
            run_id = store.start_run(argv=["test", str(k)], seed=k, scale=0.1)
            store.add_event(run_id, "tick", payload={"k": k})
            store.finish_run(run_id)
            job = Job(spec=JobSpec(experiments=["table2"]))
            job.state = JobState.DONE
            store.save_job(job.row(daemon="writer"))
        store.close()
    except Exception as exc:  # pragma: no cover - failure path
        errors.append(exc)


def test_writer_thread_with_reader_processes(tmp_path):
    """One writer thread + 3 reader subprocesses: nobody sees a lock error."""
    store_path = str(tmp_path / "history.db")
    RunStore(store_path).close()  # create the schema up front

    errors: list = []
    writer = threading.Thread(target=_writer, args=(store_path, 30, errors))
    writer.start()
    readers = [
        subprocess.Popen(
            [sys.executable, "-c", READER, store_path],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env={"PYTHONPATH": _src_path(), "PATH": "/usr/bin:/bin"},
        )
        for _ in range(3)
    ]
    writer.join(timeout=120)
    assert not writer.is_alive()
    assert errors == []
    for proc in readers:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()
        assert b"database is locked" not in err
        assert out.strip() == b"ok"

    store = RunStore(store_path)
    assert len(store.list_runs()) == 30
    assert len(store.load_jobs(states=(JobState.DONE,))) == 30
    store.close()


def test_two_connections_interleaved_writes(tmp_path):
    """Two open connections to one db can both write (WAL + busy timeout)."""
    store_path = str(tmp_path / "history.db")
    a = RunStore(store_path)
    b = RunStore(store_path)
    ra = a.start_run(argv=["a"], seed=1, scale=0.1)
    rb = b.start_run(argv=["b"], seed=2, scale=0.1)
    a.add_event(ra, "tick")
    b.add_event(rb, "tick")
    a.finish_run(ra)
    b.finish_run(rb)
    assert len(a.list_runs()) == 2
    a.close()
    b.close()


def test_one_store_shared_across_threads(tmp_path):
    """A single RunStore instance is thread-safe under its internal lock."""
    store = RunStore(str(tmp_path / "history.db"))
    errors: list = []

    def hammer(tag: str) -> None:
        try:
            for k in range(20):
                run_id = store.start_run(argv=[tag, str(k)], seed=k, scale=0.1)
                store.finish_run(run_id)
                store.list_runs()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(f"t{i}",)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert errors == []
    assert len(store.list_runs()) == 80
    store.close()


def test_jobs_table_crud(tmp_path):
    """save/load/row round trip and state filtering on the jobs table."""
    store = RunStore(str(tmp_path / "history.db"))
    jobs = []
    for state in (JobState.QUEUED, JobState.RUNNING, JobState.DONE):
        job = Job(spec=JobSpec(experiments=["table2"], seed=3))
        job.state = state
        store.save_job(job.row(daemon="test"))
        jobs.append(job)

    assert {r["state"] for r in store.load_jobs()} == {
        JobState.QUEUED,
        JobState.RUNNING,
        JobState.DONE,
    }
    backlog = store.load_jobs(states=(JobState.QUEUED, JobState.RUNNING))
    assert len(backlog) == 2
    row = store.job_row(jobs[0].id)
    assert row["spec"]["experiments"] == ["table2"]
    assert row["spec"]["seed"] == 3
    assert store.job_row("missing") is None

    # Upsert: saving again replaces the row.
    jobs[0].state = JobState.CANCELLED
    store.save_job(jobs[0].row(daemon="test"))
    assert store.job_row(jobs[0].id)["state"] == JobState.CANCELLED
    store.close()
