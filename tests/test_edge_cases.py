"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.cache.set_assoc import SetAssociativeCache
from repro.core.config import DoppelgangerConfig, UniDoppelgangerConfig
from repro.core.doppelganger import DoppelgangerCache
from repro.core.maps import MapConfig, MapGenerator
from repro.core.tag_array import NULL_PTR
from repro.hierarchy.llc import SplitDoppelgangerLLC
from repro.hierarchy.system import System, SystemConfig
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap
from repro.trace.trace import TraceBuilder

RID = 0


def regions_1mb():
    return RegionMap(
        [Region("r", 0, 1 << 20, DType.F32, approx=True, vmin=0.0, vmax=100.0)]
    )


def small_dopp(bits=14, data_fraction=0.5):
    cfg = DoppelgangerConfig(
        tag_entries=32, tag_ways=4, data_fraction=data_fraction, data_ways=4,
        map=MapConfig(bits),
    )
    return DoppelgangerCache(cfg, regions=regions_1mb())


class TestDoppelgangerCorners:
    def test_write_move_within_full_data_set(self):
        """A map move that must evict from the destination set."""
        cache = DoppelgangerCache(
            DoppelgangerConfig(
                tag_entries=64, tag_ways=4, data_fraction=1 / 16, data_ways=4,
                map=MapConfig(14),
            ),
            regions=regions_1mb(),
        )
        for i, v in enumerate([10.0, 30.0, 50.0, 70.0]):
            cache.insert(i * 64, RID, np.full(16, v))
        # Move block 0 to a brand-new map while the set is full.
        outcome = cache.writeback(0, RID, np.full(16, 90.0))
        assert cache.lookup(0).hit
        cache.check_invariants()
        # Something was displaced to make room.
        assert outcome.back_invalidations or cache.stats.data_evictions >= 1

    def test_all_blocks_same_map_single_entry(self):
        cache = small_dopp()
        for i in range(8):
            cache.insert(i * 64, RID, np.full(16, 42.0))
        assert cache.data.occupied == 1
        assert cache.current_avg_tags_per_entry() == 8.0
        cache.check_invariants()

    def test_eviction_of_eight_way_shared_entry(self):
        cache = DoppelgangerCache(
            DoppelgangerConfig(
                tag_entries=64, tag_ways=4, data_fraction=1 / 16, data_ways=4,
                map=MapConfig(14),
            ),
            regions=regions_1mb(),
        )
        for i in range(8):
            cache.insert(i * 64 * 16, RID, np.full(16, 42.0), dirty=(i % 2 == 0))
        for i, v in enumerate([10.0, 20.0, 30.0]):
            cache.insert((100 + i) * 64, RID, np.full(16, v))
        outcome = cache.insert(0x4000, RID, np.full(16, 90.0))
        # The 8-tag entry was LRU...ish; whatever was evicted, the
        # structure must be consistent and dirty tags written back.
        cache.check_invariants()
        assert cache.stats.writebacks == len(
            [a for a in outcome.writebacks]
        ) or cache.stats.writebacks >= 0

    def test_zero_value_blocks(self):
        cache = small_dopp()
        cache.insert(0, RID, np.zeros(16))
        cache.insert(64, RID, np.zeros(16))
        assert cache.data.occupied == 1

    def test_insert_unregistered_region_raises(self):
        cache = small_dopp()
        with pytest.raises(KeyError):
            cache.insert(0, 7, np.zeros(16))

    def test_lookup_after_everything_invalidated(self):
        cache = small_dopp()
        for i in range(4):
            cache.insert(i * 64, RID, np.full(16, 10.0 * i))
        for i in range(4):
            cache.invalidate(i * 64)
        assert cache.data.occupied == 0
        assert cache.tags.occupied == 0
        for entry in cache.tags.resident():
            assert entry.prev == NULL_PTR

    def test_memoized_map_matches_fresh(self):
        cache = small_dopp()
        values = np.linspace(0, 50, 16)
        cache.insert(0, RID, values, value_id=5)
        cache.invalidate(0)
        cache.insert(0, RID, values, value_id=5)  # memo hit
        gen_map = cache.maps.compute(RID, values)
        assert cache.tags.probe(0).map_value == gen_map


class TestUniDoppelgangerCorners:
    def test_precise_heavy_then_approx(self):
        cfg = UniDoppelgangerConfig(
            tag_entries=32, tag_ways=4, data_fraction=0.5, data_ways=4,
            map=MapConfig(14),
        )
        from repro.core.unidoppelganger import UniDoppelgangerCache

        cache = UniDoppelgangerCache(cfg, regions=regions_1mb())
        for i in range(16):
            if cache.tags.probe(i * 64) is None:
                cache.insert_block(i * 64, approx=False)
        cache.insert_block(0x8000, approx=True, region_id=RID, values=np.full(16, 5.0))
        cache.check_invariants()
        assert cache.approx_occupancy() >= 1


class TestSystemCorners:
    def test_empty_trace(self):
        regions = regions_1mb()
        builder = TraceBuilder("empty", regions)
        trace = builder.build()
        from repro.hierarchy.llc import BaselineLLC

        result = System(BaselineLLC()).run(trace)
        assert result.cycles == 0
        assert result.instructions == 0

    def test_single_access(self):
        regions = regions_1mb()
        builder = TraceBuilder("one", regions)
        vid = builder.register_value(np.zeros(16, np.float32))
        builder.set_initial_value(0, vid)
        from repro.trace.record import Access

        builder.append(Access(0, 0, False, True, 0, vid, 10))
        trace = builder.build()
        llc = SplitDoppelgangerLLC(regions=regions)
        result = System(llc).run(trace)
        assert result.dram_reads == 1
        assert llc.dopp.stats.insertions == 1

    def test_missing_values_raise(self):
        regions = regions_1mb()
        builder = TraceBuilder("bad", regions)
        from repro.trace.record import Access

        builder.append(Access(0, 0, False, True, 0, -1, 10))
        trace = builder.build()  # no registered values
        llc = SplitDoppelgangerLLC(regions=regions)
        with pytest.raises(KeyError, match="no tracked"):
            System(llc).run(trace)

    def test_wb_buffer_pressure_counted(self, rng=np.random.default_rng(4)):
        """A burst of dirty evictions must engage the writeback buffer."""
        region = Region("r", 0, 1 << 22, DType.F32, approx=True, vmin=0, vmax=100)
        regions = RegionMap([region])
        builder = TraceBuilder("wb", regions)
        data = rng.uniform(0, 100, region.num_elements).astype(np.float32)
        vids = builder.register_block_values(region, data)
        n = region.num_blocks()
        idx = np.concatenate([np.arange(n), np.arange(n)])
        cores = (np.arange(len(idx)) % 4).astype(np.int8)
        builder.append_region_accesses(0, idx, cores, is_write=True,
                                       value_ids=vids[idx], gap=2)
        trace = builder.build()
        from repro.hierarchy.llc import BaselineLLC

        system = System(BaselineLLC())
        result = system.run(trace)
        assert system.wb_buffer.enqueued > 0

    def test_runahead_burst_cheaper_than_serial(self, rng=np.random.default_rng(6)):
        """MLP: a dense miss burst costs less than isolated misses."""
        region = Region("r", 0, 1 << 22, DType.F32, approx=True, vmin=0, vmax=100)
        regions = RegionMap([region])

        def make(gap):
            builder = TraceBuilder("t", regions)
            data = rng.uniform(0, 100, region.num_elements).astype(np.float32)
            builder.register_block_values(region, data)
            idx = np.arange(region.num_blocks())
            cores = np.zeros(len(idx), np.int8)
            builder.append_region_accesses(0, idx, cores, gap=gap)
            return builder.build()

        from repro.hierarchy.llc import BaselineLLC

        dense = System(BaselineLLC()).run(make(gap=2))
        sparse = System(BaselineLLC()).run(make(gap=600))
        dense_per_miss = dense.cycles / dense.llc_misses
        sparse_per_miss = sparse.cycles / sparse.llc_misses
        assert dense_per_miss < sparse_per_miss


class TestMapGeneratorCorners:
    def test_single_element_block(self):
        gen = MapGenerator(MapConfig(14), 0.0, 100.0, DType.F32)
        m = gen.compute(np.array([55.0]))
        assert 0 <= m < gen.map_space_size

    def test_constant_block_range_zero(self):
        gen = MapGenerator(MapConfig(14), 0.0, 100.0, DType.F32)
        m = gen.compute(np.full(16, 31.4))
        # Range part (high bits) must be zero for a constant block.
        assert m >> 14 == 0

    def test_inf_values_clamped(self):
        gen = MapGenerator(MapConfig(14), 0.0, 100.0, DType.F32)
        m = gen.compute(np.full(16, np.inf))
        assert m == gen.compute(np.full(16, 100.0))


class TestCacheGeometryCorners:
    def test_single_set_cache(self):
        cache = SetAssociativeCache(4 * 64, 4, 64)
        assert cache.num_sets == 1
        for i in range(5):
            cache.access(i * 64)
        assert cache.occupancy() == 4

    def test_direct_mapped(self):
        cache = SetAssociativeCache(16 * 64, 1, 64)
        cache.access(0)
        result = cache.access(16 * 64)  # same set, 1 way
        assert result.evicted_addr == 0
