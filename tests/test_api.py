"""Tests for the stable public API (``repro.simulate`` & friends)."""

import os
import warnings

import pytest

import repro
from repro.api import as_spec
from repro.harness.runner import ConfigSpec, ExperimentContext, baseline_spec, dopp_spec, uni_spec

SEED = 3
SCALE = 0.05


class TestAsSpec:
    def test_none_is_baseline(self):
        assert as_spec(None) == baseline_spec()

    def test_shorthands(self):
        assert as_spec("baseline") == baseline_spec()
        assert as_spec("dopp") == dopp_spec()
        assert as_spec("uni") == uni_spec()

    def test_spec_passthrough(self):
        spec = dopp_spec(12, 0.5)
        assert as_spec(spec) is spec

    def test_unknown_string(self):
        with pytest.raises(ValueError, match="unknown config"):
            as_spec("bogus")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            as_spec(42)


class TestSimulate:
    def test_returns_run_record(self):
        rec = repro.simulate("swaptions", seed=SEED, scale=SCALE)
        assert rec.system.cycles > 0
        assert rec.accesses > 0
        assert rec.spec == baseline_spec()

    def test_engines_bit_identical(self):
        batched = repro.simulate("swaptions", "dopp", seed=SEED, scale=SCALE)
        reference = repro.simulate(
            "swaptions", "dopp", engine="reference", seed=SEED, scale=SCALE
        )
        assert batched.system == reference.system

    def test_ctx_reuse_memoizes(self):
        ctx = ExperimentContext(seed=SEED, scale=SCALE, workloads=["swaptions"])
        first = repro.simulate("swaptions", ctx=ctx)
        second = repro.simulate("swaptions", ctx=ctx)
        assert first is second

    def test_to_dict_schema(self):
        rec = repro.simulate("swaptions", seed=SEED, scale=SCALE)
        d = rec.to_dict()
        assert set(d) == {
            "config", "system", "energy", "sim_wall_s", "accesses",
            "accesses_per_sec", "engine_stats",
        }
        assert d["config"]["label"] == "baseline-2MB"
        assert d["system"]["cycles"] == rec.system.cycles
        assert d["config"] == rec.spec.to_dict()


class TestRunExperiment:
    def test_returns_tables(self):
        tables = repro.run_experiment("table3")
        assert list(tables) == [""]
        assert "hardware cost" in tables[""].title

    def test_json_dir(self, tmp_path):
        repro.run_experiment("fig13", json_dir=str(tmp_path))
        assert os.path.exists(tmp_path / "fig13.json")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            repro.run_experiment("fig99")

    def test_simulated_experiment(self):
        tables = repro.run_experiment(
            "table2", seed=SEED, scale=SCALE, workloads=["swaptions"]
        )
        rows = tables[""].to_dict()["rows"]
        assert rows[0][0] == "swaptions"


class TestLazyExports:
    def test_all_is_real(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_dir_covers_exports(self):
        listing = dir(repro)
        assert "simulate" in listing and "run_experiment" in listing

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_exported

    def test_exports_resolve_to_canonical_objects(self):
        assert repro.ConfigSpec is ConfigSpec
        assert repro.baseline_spec is baseline_spec


class TestShimRetired:
    def test_cli_run_experiment_shim_is_gone(self):
        # The PR-2 deprecation shim completed its cycle; the supported
        # entry point is repro.run_experiment.
        import repro.cli as cli

        assert not hasattr(cli, "run_experiment")
        assert "run_experiment" not in cli.__all__

    def test_typed_unknown_error(self):
        from repro.errors import UnknownExperimentError

        with pytest.raises(UnknownExperimentError) as excinfo:
            repro.run_experiment("fig99")
        assert excinfo.value.exit_code == 2
        assert "fig99" in str(excinfo.value)
        assert "table2" in excinfo.value.known

    def test_new_cli_path_does_not_warn(self, tmp_path, capsys):
        from repro.cli import main

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert main(["table3", "--json-out", str(tmp_path)]) == 0
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
