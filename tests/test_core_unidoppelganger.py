"""Protocol tests for the unified Doppelgänger cache (Sec. 3.8)."""

import numpy as np
import pytest

from repro.core.config import UniDoppelgangerConfig
from repro.core.maps import MapConfig
from repro.core.unidoppelganger import UniDoppelgangerCache
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap

RID = 0


def make_cache(tag_entries=64, tag_ways=4, data_fraction=0.5):
    regions = RegionMap(
        [Region("r", 0, 1 << 20, DType.F32, approx=True, vmin=0.0, vmax=100.0)]
    )
    cfg = UniDoppelgangerConfig(
        tag_entries=tag_entries,
        tag_ways=tag_ways,
        data_fraction=data_fraction,
        data_ways=4,
        map=MapConfig(14),
    )
    return UniDoppelgangerCache(cfg, regions=regions)


def block(value, elems=16):
    return np.full(elems, float(value))


class TestPrecisePath:
    def test_precise_insert_and_hit(self):
        cache = make_cache()
        cache.insert_block(0x40, approx=False, value_id=3)
        assert cache.lookup(0x40).hit

    def test_precise_blocks_never_share(self):
        cache = make_cache()
        cache.insert_block(0x40, approx=False)
        cache.insert_block(0x80, approx=False)
        assert cache.precise_occupancy() == 2

    def test_precise_tag_pointers_null(self):
        cache = make_cache()
        cache.insert_block(0x40, approx=False)
        entry = cache.tags.probe(0x40)
        assert entry.precise
        assert entry.prev == -1 and entry.next == -1

    def test_precise_writeback_updates_value(self):
        cache = make_cache()
        cache.insert_block(0x40, approx=False, value_id=3)
        cache.writeback_block(0x40, approx=False, value_id=8)
        assert cache.resident_value_id(0x40) == 8

    def test_precise_writeback_nonresident_inserts(self):
        cache = make_cache()
        outcome = cache.writeback_block(0x40, approx=False, value_id=8)
        assert not outcome.hit
        assert cache.tags.probe(0x40).dirty

    def test_precise_same_low_bits_no_alias(self):
        cache = make_cache()
        a = 0x40
        b = 0x40 + cache.data.num_sets * 64  # same data set index
        cache.insert_block(a, approx=False)
        cache.insert_block(b, approx=False)
        assert cache.lookup(a).hit
        assert cache.lookup(b).hit
        assert cache.precise_occupancy() == 2


class TestMixedPaths:
    def test_precise_and_approx_coexist(self):
        cache = make_cache()
        cache.insert_block(0x40, approx=False)
        cache.insert_block(0x80, approx=True, region_id=RID, values=block(50.0))
        cache.insert_block(0xC0, approx=True, region_id=RID, values=block(50.0))
        assert cache.precise_occupancy() == 1
        assert cache.approx_occupancy() == 1
        cache.check_invariants()

    def test_approx_sharing_still_works(self):
        cache = make_cache()
        cache.insert_block(0x80, approx=True, region_id=RID, values=block(50.0))
        cache.insert_block(0xC0, approx=True, region_id=RID, values=block(50.0))
        assert cache.approx_occupancy() == 1
        assert cache.stats.shared_insertions == 1

    def test_approx_insert_requires_values(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.insert_block(0x80, approx=True, region_id=RID)

    def test_approx_writeback_requires_values(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.writeback_block(0x80, approx=True, region_id=RID)

    def test_data_eviction_handles_precise_victims(self):
        # One data set of 4 ways: fill with precise entries.
        cache = make_cache(tag_entries=64, tag_ways=4, data_fraction=1 / 16)
        assert cache.data.num_sets == 1
        stride = cache.data.num_sets * 64
        addrs = [i * 64 for i in range(4)]
        for addr in addrs:
            cache.insert_block(addr, approx=False)
        outcome = cache.insert_block(0x1000, approx=False)
        assert len(outcome.back_invalidations) == 1
        assert cache.precise_occupancy() == 4
        cache.check_invariants()

    def test_mixed_eviction_under_pressure(self, rng=np.random.default_rng(5)):
        cache = make_cache(tag_entries=32, tag_ways=4, data_fraction=0.25)
        for i in range(60):
            addr = int(rng.integers(0, 256)) * 64
            approx = bool(rng.random() < 0.5)
            if cache.tags.probe(addr) is not None:
                continue
            if approx:
                cache.insert_block(
                    addr, approx=True, region_id=RID,
                    values=rng.uniform(0, 100, 16),
                )
            else:
                cache.insert_block(addr, approx=False)
        cache.check_invariants()


class TestKindFlip:
    """An address reannotated between precise and approximate must not
    cross-link the two key spaces."""

    def test_approx_writeback_to_precise_resident(self):
        cache = make_cache()
        cache.insert_block(0x40, approx=False, value_id=1)
        outcome = cache.writeback_block(
            0x40, approx=True, region_id=RID, values=block(50.0), value_id=2
        )
        assert not outcome.hit  # reinserted under the new kind
        entry = cache.tags.probe(0x40)
        assert entry is not None and not entry.precise
        cache.check_invariants()

    def test_precise_writeback_to_approx_resident(self):
        cache = make_cache()
        cache.insert_block(0x40, approx=True, region_id=RID, values=block(50.0))
        cache.writeback_block(0x40, approx=False, value_id=3)
        entry = cache.tags.probe(0x40)
        assert entry is not None and entry.precise
        cache.check_invariants()
