"""Property-based tests (hypothesis) for core invariants.

Covers the data structures the reproduction leans on hardest: LRU
ordering, map generation monotonicity/clamping, BΔI losslessness
conditions, the Doppelgänger linked-list invariants under random
operation sequences, and cache occupancy bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.replacement import LRUPolicy
from repro.cache.set_assoc import SetAssociativeCache
from repro.compression.bdi import BLOCK_BYTES, bdi_compressed_size
from repro.core.config import DoppelgangerConfig
from repro.core.doppelganger import DoppelgangerCache
from repro.core.maps import MapConfig, MapGenerator
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap

# ------------------------------------------------------------------ LRU


@given(st.lists(st.integers(0, 7), min_size=1, max_size=100))
def test_lru_victim_is_least_recently_used(accesses):
    policy = LRUPolicy(8)
    for way in accesses:
        policy.on_access(way)
    victim = policy.victim()
    # The victim must not be among the ways touched after every other
    # way's last touch; concretely: victim's last touch (or never)
    # precedes the last touch of every other touched way.
    last = {w: i for i, w in enumerate(accesses)}
    untouched = [w for w in range(8) if w not in last]
    if untouched:
        assert victim in untouched
    else:
        assert last[victim] == min(last.values())


@given(st.lists(st.integers(0, 3), min_size=1, max_size=60))
def test_lru_order_is_permutation(accesses):
    policy = LRUPolicy(4)
    for way in accesses:
        policy.on_access(way)
    assert sorted(policy.recency_order()) == [0, 1, 2, 3]


# ------------------------------------------------------------- map maker

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_floats, min_size=1, max_size=16))
def test_map_always_in_space(values):
    gen = MapGenerator(MapConfig(14), -1e6, 1e6, DType.F32)
    m = gen.compute(np.array(values))
    assert 0 <= m < gen.map_space_size


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=2, max_size=16),
    st.floats(min_value=1e-7, max_value=1e-4),
)
def test_tiny_perturbation_rarely_changes_map(values, eps):
    """Blocks within a vanishing perturbation usually share a map.

    Bins are half-open, so a block sitting exactly on a bin boundary
    may flip — that's correct behaviour; we assert the map moves at
    most one bin in each hash.
    """
    gen = MapGenerator(MapConfig(14), 0.0, 100.0, DType.F32)
    a = np.array(values)
    m1 = gen.compute(a)
    m2 = gen.compute(a + eps)
    avg_mask = (1 << 14) - 1
    assert abs((m1 & avg_mask) - (m2 & avg_mask)) <= 1
    assert abs((m1 >> 14) - (m2 >> 14)) <= 1


@given(st.lists(finite_floats, min_size=1, max_size=16))
def test_clamping_idempotent(values):
    gen = MapGenerator(MapConfig(14), 0.0, 10.0, DType.F32)
    arr = np.array(values)
    clamped = np.clip(arr, 0.0, 10.0)
    assert gen.compute(arr) == gen.compute(clamped)


@given(st.integers(1, 20), st.data())
def test_coarser_maps_never_split_groups(bits, data):
    """If two blocks share a map at M bits, they share one at M-1 bits.

    Holds for the average hash alone (the range keep-width changes
    non-uniformly when both hashes are on).
    """
    blocks = data.draw(
        st.lists(
            st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=4, max_size=4),
            min_size=2,
            max_size=2,
        )
    )
    fine = MapGenerator(MapConfig(bits, use_range=False), 0, 100, DType.F32)
    coarse = MapGenerator(MapConfig(bits - 1 if bits > 1 else 1, use_range=False), 0, 100, DType.F32)
    a, b = (np.array(blk) for blk in blocks)
    if fine.compute(a) == fine.compute(b):
        assert coarse.compute(a) == coarse.compute(b)


# ------------------------------------------------------------------ BΔI


@given(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=16, max_size=16))
def test_bdi_size_bounds(values):
    enc = bdi_compressed_size(np.array(values, dtype=np.int32))
    assert 1 <= enc.compressed_bytes <= BLOCK_BYTES


@given(st.integers(-(2**31) + 256, 2**31 - 257), st.lists(st.integers(-100, 100), min_size=16, max_size=16))
def test_bdi_clustered_ints_compress(base, deltas):
    block = np.array([base + d for d in deltas], dtype=np.int64).astype(np.int32)
    enc = bdi_compressed_size(block)
    assert enc.compressed_bytes < BLOCK_BYTES


@given(st.integers(0, 2**63 - 1))
def test_bdi_repeat_detected(value):
    block = np.full(8, value, dtype=np.uint64).view(np.int64)
    enc = bdi_compressed_size(block)
    assert enc.compressed_bytes <= 8


# --------------------------------------------------------------- caches


@given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
@settings(max_examples=50)
def test_cache_occupancy_and_residency(block_ids):
    cache = SetAssociativeCache(4 * 1024, 4, 64)
    capacity = 4 * 1024 // 64
    for bid in block_ids:
        cache.access(bid * 64)
    assert cache.occupancy() <= capacity
    # The most recently accessed block is always resident.
    assert cache.contains(block_ids[-1] * 64)


@given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
@settings(max_examples=50)
def test_cache_hits_iff_resident(block_ids):
    cache = SetAssociativeCache(4 * 1024, 4, 64)
    resident = set()
    for bid in block_ids:
        addr = bid * 64
        was_resident = cache.contains(addr)
        result = cache.access(addr)
        assert result.hit == was_resident
        resident.add(addr)
        if result.evicted_addr is not None:
            resident.discard(result.evicted_addr)
    assert set(cache.resident_addrs()) == resident


# ----------------------------------------------------------- Doppelgänger

_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "write", "invalidate", "lookup"]),
        st.integers(0, 63),  # block id
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),  # block value
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),  # spread
    ),
    min_size=1,
    max_size=120,
)


@given(_ops)
@settings(max_examples=60, deadline=None)
def test_doppelganger_invariants_under_random_ops(ops):
    """The tag/data linked-list structure survives any op sequence."""
    regions = RegionMap(
        [Region("r", 0, 1 << 20, DType.F32, approx=True, vmin=0.0, vmax=100.0)]
    )
    cfg = DoppelgangerConfig(
        tag_entries=32, tag_ways=4, data_fraction=0.5, data_ways=4, map=MapConfig(10)
    )
    cache = DoppelgangerCache(cfg, regions=regions)
    for op, bid, value, spread in ops:
        addr = bid * 64
        values = np.linspace(value - spread, value + spread, 16)
        if op == "insert":
            if cache.tags.probe(addr) is None:
                cache.insert(addr, 0, values)
        elif op == "write":
            cache.writeback(addr, 0, values)
        elif op == "invalidate":
            cache.invalidate(addr)
        else:
            cache.lookup(addr)
    cache.check_invariants()
    # Conservation: every data entry has >= 1 tag; occupancies agree.
    assert cache.data.occupied == len(cache.data.resident())
    assert cache.tags.occupied == len(cache.tags.resident())
    for entry in cache.data.resident():
        assert cache.tags.list_length(entry.head) >= 1


@given(_ops)
@settings(max_examples=30, deadline=None)
def test_doppelganger_lookup_consistency(ops):
    """After any sequence, a tag hit implies a locatable data entry."""
    regions = RegionMap(
        [Region("r", 0, 1 << 20, DType.F32, approx=True, vmin=0.0, vmax=100.0)]
    )
    cfg = DoppelgangerConfig(
        tag_entries=16, tag_ways=4, data_fraction=0.5, data_ways=4, map=MapConfig(8)
    )
    cache = DoppelgangerCache(cfg, regions=regions)
    inserted = set()
    for op, bid, value, spread in ops:
        addr = bid * 64
        values = np.full(16, value)
        if op == "insert" and cache.tags.probe(addr) is None:
            cache.insert(addr, 0, values)
            inserted.add(addr)
    for addr in inserted:
        if cache.tags.probe(addr) is not None:
            assert cache.lookup(addr).hit
            assert cache.resident_value_id(addr) != -2  # resolvable
