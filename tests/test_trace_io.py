"""Round-trip tests for trace serialization."""

import numpy as np
import pytest

from repro.hierarchy.llc import BaselineLLC
from repro.hierarchy.system import System
from repro.trace.io import load_trace, save_trace
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def trace():
    return get_workload("swaptions", seed=2, scale=0.05).build_trace()


class TestRoundTrip:
    def test_columns_identical(self, trace, tmp_path):
        path = str(tmp_path / "t.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        np.testing.assert_array_equal(loaded.addrs, trace.addrs)
        np.testing.assert_array_equal(loaded.cores, trace.cores)
        np.testing.assert_array_equal(loaded.is_write, trace.is_write)
        np.testing.assert_array_equal(loaded.approx, trace.approx)
        np.testing.assert_array_equal(loaded.gaps, trace.gaps)

    def test_regions_preserved(self, trace, tmp_path):
        path = str(tmp_path / "t.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded.regions) == len(trace.regions)
        for a, b in zip(loaded.regions, trace.regions):
            assert (a.name, a.base, a.size, a.dtype, a.approx) == (
                b.name, b.base, b.size, b.dtype, b.approx
            )
            assert a.vmin == b.vmin and a.vmax == b.vmax

    def test_values_preserved(self, trace, tmp_path):
        path = str(tmp_path / "t.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded.values) == len(trace.values)
        for vid in (0, len(trace.values) // 2, len(trace.values) - 1):
            np.testing.assert_allclose(
                loaded.block_values(vid),
                np.asarray(trace.block_values(vid), dtype=np.float64),
            )

    def test_simulation_equivalent(self, trace, tmp_path):
        path = str(tmp_path / "t.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        a = System(BaselineLLC()).run(trace)
        b = System(BaselineLLC()).run(loaded)
        assert a.cycles == b.cycles
        assert a.llc_misses == b.llc_misses
        assert a.traffic_bytes == b.traffic_bytes

    def test_version_check(self, trace, tmp_path):
        path = str(tmp_path / "t.npz")
        save_trace(trace, path)
        import numpy as np_mod

        with np_mod.load(path, allow_pickle=True) as data:
            contents = {k: data[k] for k in data.files}
        contents["format_version"] = np_mod.int64(99)
        np_mod.savez_compressed(path, **contents)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)
