"""Tests for the energy/fault frontier: voltage ladder, controller,
checkpointed resume, and the ``frontier`` experiment end-to-end.

Unit tests drive the :class:`ErrorBudgetController` with synthetic
error curves (no simulation) to pin the bracketing search, graceful
degradation, hysteresis, eval caps and state checkpointing. The
integration test SIGKILLs a real ``repro frontier`` CLI run mid-search
and asserts the resumed run reproduces an uninterrupted one
byte-identically, with the controller's decisions recorded in the
run-history store.
"""

import glob
import json
import os
import signal
import sqlite3
import subprocess
import sys
import time

import pytest

from repro.errors import ConfigError
from repro.resilience.controller import (
    ErrorBudgetController,
    FrontierOptions,
    FrontierResult,
    controller_state_dir,
)
from repro.resilience.energy import (
    MIN_READ_RATE,
    P_BIT_NOM,
    V_MIN,
    V_NOM,
    dynamic_scale,
    energy_saved_fraction,
    leakage_scale,
    p_bit,
    read_rate,
    voltage_ladder,
)
from repro.resilience.faults import FaultConfig

SEED = 3
SCALE = 0.05


# --------------------------------------------------------------- ladder


class TestVoltageLadder:
    def test_nominal_step_is_fault_free(self):
        ladder = voltage_ladder(8)
        step0 = ladder[0]
        assert step0.index == 0
        assert step0.vdd == V_NOM
        assert step0.read_rate == 0.0
        assert step0.fault_config(11) is None
        assert step0.dynamic_scale == 1.0
        assert step0.leakage_scale == 1.0

    def test_monotone_structure(self):
        """Vdd strictly falls; rate and energy scales are monotone —
        the invariants the controller's bracketing relies on."""
        ladder = voltage_ladder(8)
        assert len(ladder) == 8
        assert ladder[-1].vdd == V_MIN
        for prev, cur in zip(ladder, ladder[1:]):
            assert cur.vdd < prev.vdd
            assert cur.read_rate >= prev.read_rate
            assert cur.dynamic_scale < prev.dynamic_scale
            assert cur.leakage_scale < prev.leakage_scale

    def test_scaled_steps_have_fault_configs(self):
        ladder = voltage_ladder(8)
        for step in ladder[1:]:
            if step.read_rate == 0.0:
                continue
            cfg = step.fault_config(11, ("approx_data",))
            assert isinstance(cfg, FaultConfig)
            assert cfg.seed == 11
            assert cfg.read_rate == step.read_rate
            assert cfg.flip_bits >= 1
            assert cfg.targets == ("approx_data",)

    def test_physics(self):
        assert p_bit(V_NOM) == P_BIT_NOM
        assert p_bit(V_NOM + 0.1) == P_BIT_NOM  # no credit above nominal
        # One decade per 0.06 V of droop.
        assert p_bit(V_NOM - 0.06) == pytest.approx(1e-8)
        assert p_bit(V_NOM - 0.12) == pytest.approx(1e-7)
        assert p_bit(0.0) == 1.0  # clamped
        # Word rate floors to exactly zero near nominal.
        assert read_rate(V_NOM) == 0.0
        rate = read_rate(0.7)
        assert MIN_READ_RATE <= rate < 1.0
        assert dynamic_scale(0.5) == pytest.approx(0.25)
        assert leakage_scale(0.5) == pytest.approx(0.5)

    def test_validation_names_field(self):
        with pytest.raises(ConfigError) as exc:
            voltage_ladder(1)
        assert exc.value.field == "voltage_steps"
        with pytest.raises(ConfigError) as exc:
            voltage_ladder(4, v_nom=0.8, v_min=0.9)
        assert exc.value.field == "voltage_steps"


class TestFrontierOptions:
    def test_from_mapping_defaults_and_unknown_keys(self):
        opts = FrontierOptions.from_mapping(
            {"error_budget": 0.2, "unrelated_knob": 5, "max_evals": None}
        )
        assert opts.error_budget == 0.2
        assert opts.max_evals == FrontierOptions().max_evals
        assert FrontierOptions.from_mapping(None) == FrontierOptions()

    @pytest.mark.parametrize(
        "kwargs,field",
        [
            ({"error_budget": 0.0}, "error_budget"),
            ({"error_budget": 1.5}, "error_budget"),
            ({"voltage_steps": 1}, "voltage_steps"),
            ({"hysteresis": -1}, "hysteresis"),
            ({"max_evals": 1}, "max_evals"),
            ({"targets": ("bogus",)}, "targets"),
        ],
    )
    def test_validation_names_field(self, kwargs, field):
        with pytest.raises(ConfigError) as exc:
            FrontierOptions(**kwargs)
        assert exc.value.field == field

    def test_roundtrip(self):
        opts = FrontierOptions(error_budget=0.3, voltage_steps=6)
        assert FrontierOptions.from_mapping(opts.to_dict()) == opts


# ----------------------------------------------------------- controller


def _drive(controller, error_of_step, energy_of_step=None):
    """Run a controller against a synthetic error curve to completion."""
    probes = []
    while (step := controller.pending_step()) is not None:
        probes.append(step.index)
        controller.observe(
            step.index,
            error=error_of_step(step.index),
            energy_saved=(
                energy_of_step(step.index) if energy_of_step else 0.1
            ),
        )
    return probes, controller.result()


class TestErrorBudgetController:
    LADDER = voltage_ladder(8)

    def _controller(self, budget=0.1, **kwargs):
        opts = FrontierOptions(error_budget=budget, **kwargs)
        return ErrorBudgetController("w", self.LADDER, opts)

    def test_bisection_converges_on_threshold(self):
        """Error steps over budget at index 5: frontier must be 4."""
        probes, res = _drive(
            self._controller(), lambda i: 0.05 if i <= 4 else 0.5
        )
        assert probes[0] == 0  # nominal verified first
        assert res.frontier == 4
        assert res.converged and res.degraded is None
        assert res.status == "converged"
        # log2(8) bisection: far fewer probes than the ladder.
        assert len(probes) <= 5
        assert res.operating == 3  # default hysteresis backs off 1 step

    def test_all_within_budget(self):
        probes, res = _drive(self._controller(), lambda i: 0.01)
        assert res.frontier == len(self.LADDER) - 1
        assert res.converged

    def test_precise_fallback_when_nominal_fails(self):
        """Inherent approximation error over budget -> precise mode."""
        events = []
        opts = FrontierOptions(error_budget=0.1)
        ctrl = ErrorBudgetController(
            "w", self.LADDER, opts, event_log=events
        )
        probes, res = _drive(ctrl, lambda i: 0.9)
        assert probes == [0]
        assert res.degraded == "precise"
        assert res.status == "precise"
        assert res.frontier == -1 and res.operating == -1
        assert res.survivable_rate == 0.0
        assert res.frontier_energy_saved == 0.0
        kinds = [ev["kind"] for ev in events]
        assert kinds == [
            "controller_step", "controller_degrade", "controller_converged",
        ]
        assert events[1]["action"] == "precise_fallback"

    def test_degrade_raises_voltage(self):
        """A failed scaled probe narrows hi: next probe is higher Vdd."""
        events = []
        ctrl = ErrorBudgetController(
            "w", self.LADDER, FrontierOptions(error_budget=0.1),
            event_log=events,
        )
        probes, _ = _drive(ctrl, lambda i: 0.05 if i <= 2 else 0.5)
        over = probes.index(4)  # first mid-bracket probe fails
        assert probes[over + 1] < probes[over]  # voltage stepped back up
        degrades = [e for e in events if e["kind"] == "controller_degrade"]
        assert degrades and all(
            e["action"] == "raise_voltage" for e in degrades
        )

    def test_eval_cap_finalizes_without_convergence(self):
        probes, res = _drive(
            self._controller(max_evals=2), lambda i: 0.05 if i <= 4 else 0.5
        )
        assert len(probes) == 2
        assert not res.converged
        assert res.status == "eval-capped"
        assert res.frontier >= 0  # best verified step, not a guess

    def test_hysteresis_zero_operates_on_frontier(self):
        _, res = _drive(
            self._controller(hysteresis=0), lambda i: 0.05 if i <= 4 else 0.5
        )
        assert res.operating == res.frontier

    def test_result_properties_track_frontier_eval(self):
        _, res = _drive(
            self._controller(),
            lambda i: 0.05 if i <= 4 else 0.5,
            energy_of_step=lambda i: i / 10.0,
        )
        assert isinstance(res, FrontierResult)
        assert res.frontier_error == 0.05
        assert res.frontier_energy_saved == pytest.approx(0.4)
        assert res.survivable_rate == self.LADDER[4].read_rate


class TestControllerCheckpoint:
    def test_state_dir_layout(self, tmp_path):
        assert controller_state_dir(None) is None
        assert controller_state_dir("/c/dir") == os.path.join(
            "/c/dir", "frontier"
        )
        assert controller_state_dir("/c/j.zip") == "/c/j.frontier"

    def _interrupted(self, tmp_path, n_obs):
        """A controller killed after ``n_obs`` observations."""
        opts = FrontierOptions(error_budget=0.1)
        ladder = voltage_ladder(8)
        ctrl = ErrorBudgetController(
            "w", ladder, opts, state_dir=str(tmp_path), context_meta={"s": 1}
        )
        for _ in range(n_obs):
            step = ctrl.pending_step()
            ctrl.observe(
                step.index,
                error=0.05 if step.index <= 4 else 0.5,
                energy_saved=0.1,
            )
        return opts, ladder, ctrl

    def test_resume_mid_bracket_is_byte_identical(self, tmp_path):
        opts, ladder, killed = self._interrupted(tmp_path, n_obs=2)
        # Uninterrupted reference search (no state dir).
        _, want = _drive(
            ErrorBudgetController("w", ladder, opts),
            lambda i: 0.05 if i <= 4 else 0.5,
        )
        # A fresh controller adopts the killed one's bracket...
        resumed = ErrorBudgetController(
            "w", ladder, opts, state_dir=str(tmp_path), context_meta={"s": 1}
        )
        assert (resumed.lo, resumed.hi) == (killed.lo, killed.hi)
        assert resumed.evals == killed.evals
        # ...and finishes to the same result as the clean search.
        probes, got = _drive(resumed, lambda i: 0.05 if i <= 4 else 0.5)
        assert len(probes) < len(want.evals)  # it did NOT restart
        assert got.frontier == want.frontier
        assert got.evals == want.evals

    def test_resume_replays_events_for_restored_evals(self, tmp_path):
        """The resumed run's event log carries the full history, even
        for decisions made before the kill."""
        opts, ladder, killed = self._interrupted(tmp_path, n_obs=2)
        events = []
        resumed = ErrorBudgetController(
            "w", ladder, opts, state_dir=str(tmp_path),
            context_meta={"s": 1}, event_log=events,
        )
        steps = [e for e in events if e["kind"] == "controller_step"]
        assert [e["step"] for e in steps] == [
            e["step"] for e in killed.evals
        ]
        assert (resumed.lo, resumed.hi) == (killed.lo, killed.hi)

    def test_stale_fingerprint_restarts(self, tmp_path):
        opts, ladder, _ = self._interrupted(tmp_path, n_obs=2)
        # Different budget -> different fingerprint -> fresh bracket.
        other = ErrorBudgetController(
            "w", ladder, FrontierOptions(error_budget=0.2),
            state_dir=str(tmp_path), context_meta={"s": 1},
        )
        assert other.evals == [] and (other.lo, other.hi) == (-1, 8)
        # Different context (seed/scale/engine) -> fresh bracket too.
        other = ErrorBudgetController(
            "w", ladder, opts, state_dir=str(tmp_path), context_meta={"s": 2}
        )
        assert other.evals == []

    def test_corrupt_state_restarts_with_warning(self, tmp_path):
        opts, ladder, _ = self._interrupted(tmp_path, n_obs=2)
        (tmp_path / "w.json").write_text("{not json")
        ctrl = ErrorBudgetController(
            "w", ladder, opts, state_dir=str(tmp_path), context_meta={"s": 1}
        )
        assert ctrl.evals == []  # skipped, not crashed


# ------------------------------------------------- FaultConfig.from_dict


class TestFaultConfigFromDict:
    def test_roundtrip(self):
        cfg = FaultConfig(
            seed=7, read_rate=1e-3, flip_bits=2,
            burst_rate=1e-4, burst_len=3, stuck_bits=1,
            targets=("dram", "approx_data"),
        )
        assert FaultConfig.from_dict(cfg.to_dict()) == cfg

    def test_missing_fields_take_defaults(self):
        cfg = FaultConfig.from_dict({"read_rate": 0.5})
        assert cfg.read_rate == 0.5
        assert cfg.flip_bits == FaultConfig().flip_bits

    @pytest.mark.parametrize(
        "data,field",
        [
            ("nope", "faults"),
            ({"read_rat": 0.5}, "read_rat"),
            ({"read_rate": "lots"}, "read_rate"),
            ({"flip_bits": "two"}, "flip_bits"),
            ({"targets": "dram"}, "targets"),
            ({"targets": 7}, "targets"),
            ({"read_rate": 2.0}, "read_rate"),  # range, via __post_init__
        ],
    )
    def test_errors_name_offending_field(self, data, field):
        with pytest.raises(ConfigError) as exc:
            FaultConfig.from_dict(data)
        assert exc.value.field == field


# ---------------------------------------------------------- integration


def _strip_tables(path):
    """Frontier tables from a BENCH json dir, wall-clock fields gone."""
    with open(os.path.join(path, "frontier.json")) as fh:
        return json.load(fh)["tables"]


class TestFrontierKillAndResume:
    """A SIGKILLed frontier search resumes mid-bracket, byte-identical."""

    def _cli(self, tmp_path, json_dir, extra):
        return [
            sys.executable, "-m", "repro.cli", "frontier",
            "--workloads", "canneal",
            "--scale", str(SCALE), "--seed", str(SEED),
            "--error-budget", "0.25", "--voltage-steps", "6",
            "--out", str(tmp_path / "tables"),
            "--json-out", str(json_dir),
        ] + extra

    @staticmethod
    def _env():
        env = os.environ.copy()
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = (
            os.path.join(root, "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        return env

    def test_sigkilled_search_resumes_byte_identical(self, tmp_path):
        env = self._env()
        ckpt = tmp_path / "ckpt"
        store = tmp_path / "history.db"

        # Run 1: SIGKILLed once the first probe hit the journal.
        proc = subprocess.Popen(
            self._cli(
                tmp_path, tmp_path / "json_killed",
                ["--jobs", "2", "--checkpoint-dir", str(ckpt)],
            ),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if glob.glob(str(ckpt / "*.pkl")) or proc.poll() is not None:
                break
            time.sleep(0.05)
        interrupted = proc.poll() is None
        if interrupted:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

        # Run 2: resume against the same journal + controller state.
        resumed = subprocess.run(
            self._cli(
                tmp_path, tmp_path / "json_resumed",
                ["--jobs", "2", "--checkpoint-dir", str(ckpt),
                 "--resume", "--store", str(store)],
            ),
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "[resumed" in resumed.stdout
        if interrupted:
            assert glob.glob(str(ckpt / "*.pkl"))

        # Run 3: the same search uninterrupted, no checkpointing.
        clean = subprocess.run(
            self._cli(tmp_path, tmp_path / "json_clean", []),
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert clean.returncode == 0, clean.stderr

        assert _strip_tables(tmp_path / "json_resumed") == _strip_tables(
            tmp_path / "json_clean"
        )

        # Controller decisions landed in the history store as events.
        with sqlite3.connect(store) as conn:
            kinds = {
                row[0]
                for row in conn.execute("SELECT DISTINCT kind FROM events")
            }
        assert "controller_step" in kinds
        assert "controller_converged" in kinds


class TestFrontierEndToEnd:
    """In-process frontier run: Pareto tables and energy credits."""

    def test_energy_saved_fraction_positive_for_scaled_step(self):
        from repro.harness.runner import ExperimentContext, dopp_spec

        ctx = ExperimentContext(seed=SEED, scale=SCALE, workloads=["canneal"])
        record = ctx.run("canneal", dopp_spec(14, 0.25))
        ladder = voltage_ladder(6)
        assert energy_saved_fraction(record, ladder[0]) == 0.0
        saved = energy_saved_fraction(record, ladder[-1])
        assert 0.0 < saved < 1.0
        # More droop, more credit.
        assert saved > energy_saved_fraction(record, ladder[1])

    def test_frontier_strategy_tables(self):
        from repro.harness.strategy import run_strategies

        results = run_strategies(
            ["frontier"], workloads=["canneal"], seed=SEED, scale=SCALE,
            strategy_options={"error_budget": 0.25, "voltage_steps": 6},
        )
        tables = results.tables["frontier"]
        main = tables[""]
        assert main.headers[0] == "workload"
        (row,) = main.rows
        assert row[0] == "canneal"
        assert row[-1] in ("converged", "eval-capped", "precise")
        points = tables["points"]
        assert {r[0] for r in points.rows} == {"canneal"}
        # Step 0 (nominal) is always probed.
        assert 0 in {r[1] for r in points.rows}
