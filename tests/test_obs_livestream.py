"""Tests for live worker progress streaming (``--progress``)."""

import io
import queue
import time

import pytest

from repro.harness.parallel import prefetch_runs
from repro.harness.runner import ExperimentContext, baseline_spec
from repro.obs.livestream import (
    HEARTBEAT_KIND,
    HEARTBEAT_PHASES,
    LiveProgressSink,
    WorkerProgress,
    make_heartbeat,
    rss_kb,
)

SEED = 3
SCALE = 0.05
WORKLOADS = ["kmeans", "swaptions"]


class TestHeartbeat:
    def test_fields(self):
        beat = make_heartbeat(
            "kmeans", "run", workload="kmeans", config="baseline-2MB",
            done=1, total=3, accesses=100, accesses_per_sec=50.0,
            slow_path_fraction=0.25,
        )
        assert beat["kind"] == HEARTBEAT_KIND
        assert beat["unit"] == "kmeans"
        assert beat["phase"] in HEARTBEAT_PHASES
        assert beat["done"] == 1 and beat["total"] == 3
        assert beat["pid"] > 0
        assert beat["ts_unix"] <= time.time()

    def test_rss_is_positive_here(self):
        assert rss_kb() > 0


class TestWorkerProgress:
    def test_emit_lands_in_queue(self):
        channel = queue.Queue()
        progress = WorkerProgress(channel, "kmeans")
        progress.emit("start", total=2)
        beat = channel.get_nowait()
        assert beat["unit"] == "kmeans"
        assert beat["phase"] == "start"
        assert beat["total"] == 2

    def test_none_channel_is_noop(self):
        WorkerProgress(None, "kmeans").emit("start")  # must not raise

    def test_broken_channel_disables_itself(self):
        class Broken:
            def put(self, beat):
                raise RuntimeError("manager gone")

        progress = WorkerProgress(Broken(), "kmeans")
        progress.emit("start")  # swallows the failure...
        assert progress._channel is None  # ...and turns itself off
        progress.emit("run")  # still silent


class TestLiveProgressSink:
    def test_handle_tracks_latest_per_unit(self):
        sink = LiveProgressSink()
        sink.handle(make_heartbeat("a", "start", total=2))
        sink.handle(make_heartbeat("a", "run", done=1, total=2))
        sink.handle(make_heartbeat("b", "done"))
        assert len(sink.heartbeats) == 3
        assert sink.units["a"]["phase"] == "run"
        summary = sink.summary()
        assert summary["heartbeats"] == 3
        assert summary["units"] == 2
        assert summary["unfinished"] == ["a"]

    def test_status_line_mentions_rates(self):
        sink = LiveProgressSink()
        sink.handle(
            make_heartbeat(
                "kmeans", "run", done=1, total=4,
                accesses_per_sec=1.5e6, slow_path_fraction=0.5,
            )
        )
        line = sink.status_line()
        assert "kmeans: 1/4" in line
        assert "@1.5M/s" in line
        assert "slow=50%" in line

    def test_render_writes_in_place(self):
        stream = io.StringIO()
        sink = LiveProgressSink(stream=stream, render=True)
        sink.handle(make_heartbeat("kmeans", "run", done=1, total=2))
        assert stream.getvalue().startswith("\r")
        sink.stop()
        assert stream.getvalue().endswith("\n")

    def test_non_tty_defaults_to_no_render(self):
        assert LiveProgressSink(stream=io.StringIO()).render is False

    def test_drain_thread_consumes_queue(self):
        channel = queue.Queue()
        sink = LiveProgressSink()
        sink.start(channel)
        for i in range(5):
            channel.put(make_heartbeat("u", "run", done=i, total=5))
        deadline = time.time() + 5
        while len(sink.heartbeats) < 5 and time.time() < deadline:
            time.sleep(0.01)
        sink.stop()
        assert len(sink.heartbeats) == 5

    def test_events_for_store_copies(self):
        sink = LiveProgressSink()
        sink.handle(make_heartbeat("u", "done"))
        events = sink.events_for_store()
        events[0]["phase"] = "mutated"
        assert sink.heartbeats[0]["phase"] == "done"


class TestHeartbeatsEndToEnd:
    @pytest.fixture(scope="class")
    def streamed(self):
        """A 2-job prefetch with a progress sink attached."""
        ctx = ExperimentContext(seed=SEED, scale=SCALE, workloads=WORKLOADS)
        sink = LiveProgressSink()
        fetched = prefetch_runs(
            ctx, [], jobs=2,
            run_specs=[baseline_spec()], error_specs=[],
            progress=sink,
        )
        assert fetched == len(WORKLOADS)
        return ctx, sink

    def test_every_worker_emitted_heartbeats(self, streamed):
        """Acceptance: --progress --jobs 2 emits >= 1 beat per worker."""
        _, sink = streamed
        per_unit = {}
        for beat in sink.heartbeats:
            per_unit.setdefault(beat["unit"], []).append(beat)
        assert set(per_unit) == set(WORKLOADS)
        for beats in per_unit.values():
            assert len(beats) >= 1
            assert beats[-1]["phase"] == "done"
        assert sink.summary()["unfinished"] == []

    def test_run_beats_carry_simulation_stats(self, streamed):
        ctx, sink = streamed
        runs = [b for b in sink.heartbeats if b["phase"] == "run"]
        assert len(runs) == len(WORKLOADS)
        for beat in runs:
            record = ctx._runs[(beat["workload"], baseline_spec())]
            assert beat["accesses"] == record.accesses
            assert beat["accesses_per_sec"] == record.accesses_per_sec
            assert beat["config"] == "baseline-2MB"
            assert beat["pid"] > 0

    def test_heartbeats_land_in_store(self, streamed, tmp_path):
        from repro.obs.store import RunStore

        _, sink = streamed
        with RunStore(str(tmp_path / "h.db")) as store:
            run_id = store.start_run()
            n = store.add_events(run_id, sink.events_for_store())
            assert n == len(sink.heartbeats)
            stored = store.events_for(run_id, kind=HEARTBEAT_KIND)
            assert {b["unit"] for b in stored} == set(WORKLOADS)

    def test_results_identical_to_sequential(self, streamed):
        ctx, _ = streamed
        seq = ExperimentContext(seed=SEED, scale=SCALE, workloads=WORKLOADS)
        for name in WORKLOADS:
            seq.run(name, baseline_spec())
        for key, record in seq._runs.items():
            assert ctx._runs[key].system == record.system
