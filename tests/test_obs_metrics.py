"""Tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.cache.stats import CacheStats
from repro.obs.metrics import (
    NULL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestInstruments:
    def test_counter(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.as_dict() == {"type": "counter", "value": 5}

    def test_gauge(self):
        g = Gauge("occupancy")
        g.set(0.75)
        assert g.value == 0.75
        assert g.as_dict()["type"] == "gauge"

    def test_histogram_summary(self):
        h = Histogram("fanout")
        for v in (1, 2, 4, 8):
            h.observe(v)
        assert h.count == 4
        assert h.total == 15
        assert h.mean == pytest.approx(3.75)
        assert h.min == 1
        assert h.max == 8

    def test_histogram_pow2_buckets(self):
        h = Histogram("x")
        h.observe(1)  # bucket 0 (v <= 1)
        h.observe(3)  # bucket 2 (2 < v <= 4)
        h.observe(4)  # bucket 2
        assert h.buckets[0] == 1
        assert h.buckets[2] == 2

    def test_histogram_negative_clamped_to_bucket_zero(self):
        h = Histogram("x")
        h.observe(-5)
        assert h.buckets == {0: 1}
        assert h.min == -5

    def test_timer_context_manager(self):
        t = Timer("phase")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.total_ns > 0
        assert t.as_dict()["type"] == "timer"

    def test_timer_observe_ns(self):
        t = Timer("phase")
        t.observe_ns(2_000_000_000)
        assert t.total_seconds == pytest.approx(2.0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_disabled_registry_hands_out_null(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("a")
        assert c is NULL
        c.inc()  # no-op, no error
        reg.register_source("src", lambda: {"x": 1})
        assert reg.collect() == {}

    def test_null_instrument_covers_all_protocols(self):
        NULL.inc()
        NULL.set(3)
        NULL.observe(1.0)
        NULL.observe_ns(5)
        with NULL:
            pass
        assert NULL.value == 0

    def test_sources_are_lazy_and_live(self):
        reg = MetricsRegistry()
        state = {"n": 0}
        reg.register_source("cache", lambda: {"n": state["n"]})
        state["n"] = 7
        assert reg.collect()["cache.n"] == 7

    def test_source_reregistration_replaces(self):
        reg = MetricsRegistry()
        reg.register_source("s", lambda: {"v": 1})
        reg.register_source("s", lambda: {"v": 2})
        assert reg.collect()["s.v"] == 2

    def test_collect_combines_instruments_and_sources(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.register_source("s", lambda: {"v": 1})
        out = reg.collect()
        assert out["c"]["value"] == 3
        assert out["s.v"] == 1

    def test_save_json_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        path = reg.save_json(str(tmp_path / "sub" / "metrics.json"))
        data = json.loads(open(path).read())
        assert data["c"]["value"] == 2

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.register_source("s", lambda: {"v": 1})
        reg.reset()
        assert reg.collect() == {}


class TestCacheStatsPublishing:
    def test_publish_appears_under_prefix(self):
        reg = MetricsRegistry()
        stats = CacheStats()
        stats.publish(reg, "llc")
        stats.hits = 5
        stats.extra["custom"] = 2
        out = reg.collect()
        assert out["llc.hits"] == 5
        assert out["llc.custom"] == 2

    def test_publish_into_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        CacheStats().publish(reg, "llc")
        assert reg.collect() == {}
