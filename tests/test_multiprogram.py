"""Tests for multiprogrammed trace merging (Sec. 4.1)."""

import numpy as np
import pytest

from repro.hierarchy.llc import SplitDoppelgangerLLC
from repro.hierarchy.system import System
from repro.trace.multiprogram import PROGRAM_STRIDE, merge_traces
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def merged():
    a = get_workload("kmeans", seed=3, scale=0.05).build_trace()
    b = get_workload("swaptions", seed=3, scale=0.05).build_trace()
    return a, b, merge_traces([a, b])


class TestMerge:
    def test_lengths_add(self, merged):
        a, b, m = merged
        assert len(m) == len(a) + len(b)

    def test_regions_disjoint_and_prefixed(self, merged):
        _, _, m = merged
        names = [r.name for r in m.regions]
        assert any(n.startswith("p0:") for n in names)
        assert any(n.startswith("p1:") for n in names)

    def test_address_spaces_disjoint(self, merged):
        a, _, m = merged
        prog0 = m.addrs[m.addrs < PROGRAM_STRIDE]
        prog1 = m.addrs[m.addrs >= PROGRAM_STRIDE]
        assert len(prog0) == len(a)
        assert len(prog1) == len(m) - len(a)

    def test_core_partitioning(self, merged):
        _, _, m = merged
        prog0_cores = set(m.cores[m.addrs < PROGRAM_STRIDE].tolist())
        prog1_cores = set(m.cores[m.addrs >= PROGRAM_STRIDE].tolist())
        assert prog0_cores <= {0, 1}
        assert prog1_cores <= {2, 3}

    def test_value_table_consistent(self, merged):
        a, _, m = merged
        # Every initial-image id points inside the merged value table.
        for addr, vid in m.initial_image.items():
            assert 0 <= vid < len(m.values)

    def test_annotations_preserved(self, merged):
        a, _, m = merged
        orig = {r.name: r for r in a.regions}
        for region in m.regions:
            if region.name.startswith("p0:"):
                source = orig[region.name[3:]]
                assert region.approx == source.approx
                assert region.vmin == source.vmin
                assert region.vmax == source.vmax

    def test_interleaving_is_chunked(self, merged):
        _, _, m = merged
        # Programs alternate: both appear in the first few chunks.
        head = m.addrs[: 64 * 4]
        assert (head < PROGRAM_STRIDE).any()
        assert (head >= PROGRAM_STRIDE).any()

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_traces([])

    def test_group_count_mismatch_rejected(self, merged):
        a, b, _ = merged
        with pytest.raises(ValueError):
            merge_traces([a, b], core_groups=[[0]])


class TestMultiprogramSimulation:
    def test_runs_through_doppelganger(self, merged):
        _, _, m = merged
        llc = SplitDoppelgangerLLC(regions=m.regions)
        result = System(llc).run(m)
        assert result.cycles > 0
        llc.dopp.check_invariants()
        # Both programs' approximate data reached the Doppelgänger.
        assert llc.dopp.stats.insertions > 0

    def test_per_program_ranges_registered(self, merged):
        _, _, m = merged
        llc = SplitDoppelgangerLLC(regions=m.regions)
        # kmeans pixels ([0,255]) and swaptions structs ([0,100]) have
        # different per-application ranges, both registered.
        registered = len(llc.dopp.maps)
        approx_regions = len(m.regions.approx_regions())
        assert registered == approx_regions >= 2
