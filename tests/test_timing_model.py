"""Tests for the analytical timing model and its simulator cross-check."""

import numpy as np
import pytest

from repro.hierarchy.llc import BaselineLLC, SplitDoppelgangerLLC
from repro.hierarchy.system import System, SystemConfig
from repro.timing import AnalyticalModel, validate_against_simulation
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def sim_result():
    trace = get_workload("kmeans", seed=4, scale=0.1).build_trace()
    system = System(BaselineLLC())
    return system.run(trace)


class TestModel:
    def test_penalty_interpolates(self):
        cfg = SystemConfig()
        full = AnalyticalModel(cfg, burst_fraction=0.0).effective_miss_penalty()
        burst = AnalyticalModel(cfg, burst_fraction=1.0).effective_miss_penalty()
        assert full == 160
        assert burst == cfg.mem_overlap_interval
        mid = AnalyticalModel(cfg, burst_fraction=0.5).effective_miss_penalty()
        assert burst < mid < full

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            AnalyticalModel(burst_fraction=1.5)

    def test_estimate_components_positive(self, sim_result):
        estimate = AnalyticalModel().estimate(sim_result)
        assert estimate.compute > 0
        assert estimate.total >= estimate.compute
        assert set(estimate.breakdown()) == {
            "compute", "l2_flow", "llc_flow", "memory_flow",
        }

    def test_more_misses_longer_estimate(self, sim_result):
        model = AnalyticalModel()
        base = model.estimate(sim_result).total
        inflated = sim_result._replace(llc_misses=sim_result.llc_misses * 10 + 100)
        assert model.estimate(inflated).total > base


class TestCrossValidation:
    def test_baseline_simulation_explained(self, sim_result):
        ratio = validate_against_simulation(sim_result)
        assert 1 / 3 <= ratio <= 3

    def test_doppelganger_simulation_explained(self):
        trace = get_workload("jpeg", seed=4, scale=0.1).build_trace()
        llc = SplitDoppelgangerLLC(regions=trace.regions)
        result = System(llc).run(trace)
        ratio = validate_against_simulation(result)
        assert 1 / 3 <= ratio <= 3

    def test_degenerate_rejected(self, sim_result):
        empty = sim_result._replace(instructions=0, llc_misses=0)
        empty = empty._replace(
            l1_stats=type(sim_result.l1_stats)(),
            l2_stats=type(sim_result.l2_stats)(),
        )
        with pytest.raises(ValueError):
            validate_against_simulation(empty)
