"""Single-file zip checkpoint container (see docs/robustness.md)."""

import os
import zipfile

import pytest

from repro.errors import ConfigError
from repro.harness.runner import ExperimentContext, baseline_spec, dopp_spec
from repro.resilience.checkpoint import (
    ZipSweepJournal,
    compact_journal,
    open_journal,
)

SEED = 3
SCALE = 0.05


@pytest.fixture(scope="module")
def ctx():
    context = ExperimentContext(seed=SEED, scale=SCALE, workloads=["swaptions"])
    context.run("swaptions", baseline_spec())  # warm the memo once
    return context


def fresh_ctx():
    return ExperimentContext(seed=SEED, scale=SCALE, workloads=["swaptions"])


class TestZipJournal:
    def test_zip_suffix_selects_the_container(self, ctx, tmp_path):
        journal = open_journal(str(tmp_path / "ckpt.zip"), ctx)
        assert isinstance(journal, ZipSweepJournal)
        assert not isinstance(open_journal(str(tmp_path / "ckpt"), ctx),
                              ZipSweepJournal)

    def test_roundtrip_skips_recompute(self, ctx, tmp_path):
        path = str(tmp_path / "ckpt.zip")
        journal = open_journal(path, ctx)
        spec = baseline_spec()
        rec = ctx.run("swaptions", spec)
        journal.record_run("swaptions", spec, rec)
        journal.record_error("swaptions", dopp_spec(14, 0.25), 0.125)
        assert zipfile.is_zipfile(path)

        fresh = fresh_ctx()
        resumed = open_journal(path, fresh)
        assert resumed.load_into(fresh) == (1, 1)
        loaded = fresh.run("swaptions", spec)  # memo hit, no simulation
        assert loaded.system == rec.system
        assert fresh._errors[("swaptions", dopp_spec(14, 0.25))] == 0.125
        assert resumed.load_into(fresh) == (0, 0)

    def test_duplicate_append_is_idempotent(self, ctx, tmp_path):
        path = str(tmp_path / "ckpt.zip")
        journal = open_journal(path, ctx)
        rec = ctx.run("swaptions", baseline_spec())
        journal.record_run("swaptions", baseline_spec(), rec)
        journal.record_run("swaptions", baseline_spec(), rec)
        with zipfile.ZipFile(path) as zf:
            members = [n for n in zf.namelist() if n.endswith(".pkl")]
        assert len(members) == 1

    def test_meta_mismatch_is_a_config_error(self, ctx, tmp_path):
        path = str(tmp_path / "ckpt.zip")
        open_journal(path, ctx).record_error(
            "swaptions", dopp_spec(14, 0.25), 0.5
        )
        other = ExperimentContext(
            seed=SEED + 1, scale=SCALE, workloads=["swaptions"]
        )
        with pytest.raises(ConfigError) as excinfo:
            open_journal(path, other)
        assert excinfo.value.exit_code == 2

    def test_adopts_loose_directory_journal(self, ctx, tmp_path):
        # A sweep journaled to a directory, later resumed as a container
        # at <dir>.zip: the loose pickles are merged transparently.
        directory = str(tmp_path / "ckpt")
        loose = open_journal(directory, ctx)
        rec = ctx.run("swaptions", baseline_spec())
        loose.record_run("swaptions", baseline_spec(), rec)

        fresh = fresh_ctx()
        container = open_journal(directory + ".zip", fresh)
        assert container.load_into(fresh) == (1, 0)
        assert fresh.run("swaptions", baseline_spec()).system == rec.system

    def test_corrupt_container_is_quarantined(self, ctx, tmp_path):
        path = str(tmp_path / "ckpt.zip")
        with open(path, "wb") as fh:
            fh.write(b"definitely not a zip")
        journal = open_journal(path, ctx)  # quarantines, does not raise
        assert os.path.exists(path + ".corrupt")
        rec = ctx.run("swaptions", baseline_spec())
        journal.record_run("swaptions", baseline_spec(), rec)
        fresh = fresh_ctx()
        assert open_journal(path, fresh).load_into(fresh) == (1, 0)

    def test_corrupt_member_is_skipped(self, ctx, tmp_path):
        path = str(tmp_path / "ckpt.zip")
        journal = open_journal(path, ctx)
        journal.record_error("swaptions", dopp_spec(14, 0.25), 0.5)
        with zipfile.ZipFile(path, "a") as zf:
            zf.writestr("run-swaptions-deadbeefdeadbeef.pkl", b"garbage")
        fresh = fresh_ctx()
        assert open_journal(path, fresh).load_into(fresh) == (0, 1)


class TestCompact:
    def test_compacts_directory_into_container(self, ctx, tmp_path):
        directory = str(tmp_path / "ckpt")
        journal = open_journal(directory, ctx)
        rec = ctx.run("swaptions", baseline_spec())
        journal.record_run("swaptions", baseline_spec(), rec)
        journal.record_error("swaptions", dopp_spec(14, 0.25), 0.25)

        packed = compact_journal(directory)
        assert packed == directory + ".zip"
        fresh = fresh_ctx()
        # Move the loose directory away: the container alone must do.
        os.rename(directory, directory + ".bak")
        assert open_journal(packed, fresh).load_into(fresh) == (1, 1)

    def test_missing_directory_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            compact_journal(str(tmp_path / "nope"))
