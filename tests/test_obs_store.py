"""Tests for the run-history store, the history CLI and store: refs."""

import json
import os
import sqlite3
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cli import main
from repro.errors import ConfigError
from repro.obs.store import (
    _SCHEMA_V1,
    SCHEMA_VERSION,
    RunStore,
    config_digest,
    default_store_path,
    is_store_ref,
    load_bench_source,
)


def summary_row(workload="kmeans", config="baseline-2MB", **over):
    base = {
        "workload": workload,
        "config": config,
        "sim_wall_s": 0.5,
        "accesses": 1000,
        "accesses_per_sec": 2000.0,
        "cycles": 5000,
        "llc_miss_rate": 0.25,
        "l1_hit_rate": 0.9,
        "l2_hit_rate": 0.5,
        "traffic_bytes": 4096,
        "error": 0.01,
    }
    base.update(over)
    return base


@pytest.fixture
def store(tmp_path):
    with RunStore(str(tmp_path / "history.db")) as s:
        yield s


class TestSchema:
    def test_fresh_store_is_current_version(self, store):
        assert store.schema_version == SCHEMA_VERSION

    def test_fresh_store_has_all_tables(self, store):
        tables = {
            row[0]
            for row in store.query(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )[1]
        }
        assert {"runs", "results", "metrics", "events", "engine_stats"} <= tables

    def test_v1_database_auto_upgrades(self, tmp_path):
        path = str(tmp_path / "old.db")
        conn = sqlite3.connect(path)
        for stmt in _SCHEMA_V1:
            conn.execute(stmt)
        conn.execute("PRAGMA user_version = 1")
        conn.execute(
            "INSERT INTO runs (started_unix, engine) VALUES (1.0, 'batched')"
        )
        conn.commit()
        conn.close()
        with RunStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION
            # v2 additions are live: the events table and runs.cpu_s.
            store.add_event(1, "worker_heartbeat", unit="kmeans")
            assert store.events_for(1)[0]["unit"] == "kmeans"
            columns = {
                row[1] for row in store.query("PRAGMA table_info(runs)")[1]
            }
            assert "cpu_s" in columns
            # The pre-migration row survived.
            assert store.run_row(1)["engine"] == "batched"

    def test_migrated_and_fresh_schemas_match(self, tmp_path):
        old = str(tmp_path / "old.db")
        conn = sqlite3.connect(old)
        for stmt in _SCHEMA_V1:
            conn.execute(stmt)
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        conn.close()

        def schema(path):
            with RunStore(path) as s:
                return set(
                    s.query(
                        "SELECT name, sql FROM sqlite_master "
                        "WHERE name NOT LIKE 'sqlite_%'"
                    )[1]
                )

        fresh = schema(str(tmp_path / "fresh.db"))
        # Only difference allowed: column order in CREATE TABLE runs
        # (ALTER TABLE appends cpu_s); compare by name set instead.
        assert {n for n, _ in schema(old)} == {n for n, _ in fresh}

    def test_newer_schema_is_refused(self, tmp_path):
        path = str(tmp_path / "future.db")
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(ConfigError, match="newer"):
            RunStore(path)


class TestRefs:
    def test_is_store_ref(self):
        assert is_store_ref("store:last")
        assert not is_store_ref("results/json/BENCH_obs.json")

    def test_resolve_last_and_offsets(self, store):
        ids = [store.start_run() for _ in range(3)]
        assert store.resolve_ref("store:last") == ids[-1]
        assert store.resolve_ref("store:last-1") == ids[-2]
        assert store.resolve_ref("store:last-2") == ids[0]
        assert store.resolve_ref("last") == ids[-1]
        assert store.resolve_ref(f"store:{ids[0]}") == ids[0]

    def test_bad_refs_raise(self, store):
        store.start_run()
        with pytest.raises(ConfigError, match="bad store ref"):
            store.resolve_ref("store:last-x")
        with pytest.raises(ConfigError, match="bad store ref"):
            store.resolve_ref("store:latest")
        with pytest.raises(ConfigError, match="past history"):
            store.resolve_ref("store:last-5")
        with pytest.raises(ConfigError, match="no run"):
            store.resolve_ref("store:999")

    def test_empty_store_raises(self, store):
        with pytest.raises(ConfigError, match="no recorded runs"):
            store.resolve_ref("store:last")


class TestRecording:
    def test_start_and_finish_run(self, store):
        run_id = store.start_run(
            experiments=["table2"], workloads=["kmeans"], engine="batched",
            seed=7, scale=0.05, jobs=2, argv=["table2"], sha="abc123",
            config_hash="deadbeef",
        )
        store.finish_run(
            run_id, wall_s=1.5, cpu_s=2.5,
            experiments={"table2": {"wall_s": 1.4}},
            context={"seed": 7},
        )
        row = store.run_row(run_id)
        assert row["finished"] == 1
        assert row["wall_s"] == 1.5
        assert row["cpu_s"] == 2.5
        assert row["experiments"] == {"table2": {"wall_s": 1.4}}
        assert row["git_sha"] == "abc123"
        assert row["argv"] == ["table2"]

    def test_results_round_trip_verbatim(self, store):
        run_id = store.start_run()
        row = summary_row(engine_used="batched", slow_path_fraction=0.125)
        store.add_result(run_id, row, record={"accesses": 1000})
        assert store.results_for(run_id) == [row]
        assert store.records_for(run_id) == {
            ("kmeans", "baseline-2MB"): {"accesses": 1000}
        }

    def test_fault_site_counters_land_in_metrics(self, store):
        run_id = store.start_run()
        row = summary_row(
            faults={
                "injected": 5,
                "sites": {"llc": {"injected": 3}, "dram": {"injected": 2}},
            }
        )
        store.add_result(run_id, row)
        headers, rows = store.query(
            "SELECT name, value FROM metrics WHERE run_id = ? ORDER BY name",
            (run_id,),
        )
        assert rows == [("faults.dram.injected", 2.0), ("faults.llc.injected", 3.0)]

    def test_engine_stats_fan_out(self, store):
        run_id = store.start_run()
        row = summary_row(
            engine_stats={
                "accesses": 100,
                "slow_fraction": 0.25,
                "fast": {"read_hit": 60},
                "slow": {"writeback": 15},
            }
        )
        store.add_result(run_id, row)
        _, rows = store.query(
            "SELECT key, value FROM engine_stats ORDER BY key"
        )
        assert ("fast.read_hit", 60.0) in rows
        assert ("slow.writeback", 15.0) in rows
        assert ("slow_fraction", 0.25) in rows

    def test_add_events_lifts_kind_ts_unit(self, store):
        run_id = store.start_run()
        n = store.add_events(
            run_id,
            [
                {"kind": "worker_heartbeat", "unit": "kmeans",
                 "ts_unix": 5.0, "phase": "run", "done": 1},
                {"kind": "worker_heartbeat", "unit": "swaptions"},
            ],
        )
        assert n == 2
        events = store.events_for(run_id, kind="worker_heartbeat")
        assert events[0]["unit"] == "kmeans"
        assert events[0]["ts_unix"] == 5.0
        assert events[0]["phase"] == "run"
        assert events[0]["done"] == 1

    def test_gc_cascades_and_keeps_newest(self, store):
        for i in range(4):
            run_id = store.start_run()
            store.add_result(run_id, summary_row())
            store.add_event(run_id, "worker_heartbeat", unit="u")
        kept = store.run_ids()[-2:]
        assert store.gc(keep=2) == 2
        assert store.run_ids() == kept
        _, [(results,)] = store.query("SELECT COUNT(*) FROM results")
        _, [(events,)] = store.query("SELECT COUNT(*) FROM events")
        assert results == 2 and events == 2

    def test_top_validates_metric(self, store):
        run_id = store.start_run()
        store.add_result(run_id, summary_row())
        with pytest.raises(ConfigError, match="unknown metric"):
            store.top("1; DROP TABLE runs")
        assert store.top("accesses_per_sec")[0]["value"] == 2000.0

    def test_top_filters_and_orders(self, store):
        run_id = store.start_run()
        store.add_result(run_id, summary_row(error=0.5))
        store.add_result(
            run_id, summary_row(workload="swaptions", error=0.125)
        )
        best = store.top("error", best="min")
        assert [r["workload"] for r in best] == ["swaptions", "kmeans"]
        only = store.top("error", workload="kmeans")
        assert [r["workload"] for r in only] == ["kmeans"]


_metric = st.floats(
    allow_nan=False, allow_infinity=False, min_value=0, max_value=1e12
)


class TestRoundTripProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        sim_wall_s=_metric,
        accesses=st.integers(0, 2**48),
        accesses_per_sec=_metric,
        llc_miss_rate=st.floats(0, 1),
        error=_metric,
        config=st.sampled_from(
            ["baseline-2MB", "dopp-14bit-1/4", "uni-14bit-1/2"]
        ),
    )
    def test_summary_rows_export_losslessly(
        self, store, sim_wall_s, accesses, accesses_per_sec,
        llc_miss_rate, error, config,
    ):
        """RunRecord summary -> store -> BENCH export is bit-lossless."""
        row = summary_row(
            config=config,
            sim_wall_s=sim_wall_s,
            accesses=accesses,
            accesses_per_sec=accesses_per_sec,
            llc_miss_rate=llc_miss_rate,
            error=error,
        )
        run_id = store.start_run(experiments=["table2"])
        store.add_result(run_id, row, record={"summary": row})
        exported = store.export_run(run_id)
        assert exported["runs"] == [row]
        assert exported["store"]["run_id"] == run_id
        assert store.records_for(run_id)[("kmeans", config)] == {
            "summary": row
        }


class TestRealRecordRoundTrip:
    def test_run_record_summary_survives_store(self, sim_context):
        """An actual simulated RunRecord round-trips through the store."""
        rows = sim_context.run_summaries()
        records = sim_context.run_records()
        assert rows and records
        with tempfile.TemporaryDirectory() as tmp:
            with RunStore(os.path.join(tmp, "h.db")) as store:
                run_id = store.start_run()
                for row in rows:
                    store.add_result(
                        run_id, row,
                        records.get((row["workload"], row["config"])),
                    )
                assert store.results_for(run_id) == rows
                stored = store.records_for(run_id)
        for (workload, config), record in records.items():
            # JSON round-trip normalizes tuples to lists etc.; compare
            # through the same serialization.
            assert stored[(workload, config)] == json.loads(
                json.dumps(record, default=str)
            )


@pytest.fixture(scope="module")
def sim_context():
    from repro.harness.runner import ExperimentContext, baseline_spec

    ctx = ExperimentContext(seed=3, scale=0.05, workloads=["kmeans"])
    ctx.run("kmeans", baseline_spec())
    return ctx


@pytest.fixture
def populated(tmp_path):
    """A store with two runs of drifting metrics, plus its path."""
    path = str(tmp_path / "history.db")
    with RunStore(path) as store:
        for error in (0.01, 0.02):
            run_id = store.start_run(
                experiments=["table2"], engine="batched", sha="abc"
            )
            store.add_result(run_id, summary_row(error=error))
            store.finish_run(
                run_id, wall_s=1.0, cpu_s=1.0,
                experiments={"table2": {"wall_s": 0.9}},
            )
    return path


class TestHistoryCli:
    def test_list_shows_runs(self, populated, capsys):
        assert main(["history", "--store", populated, "list"]) == 0
        out = capsys.readouterr().out
        assert "Run history" in out
        assert out.count("table2") == 2

    def test_show_renders_results(self, populated, capsys):
        assert main(["history", "--store", populated, "show", "last"]) == 0
        out = capsys.readouterr().out
        assert "git_sha: abc" in out
        assert "baseline-2MB" in out

    def test_top_ranks_metric(self, populated, capsys):
        assert (
            main(
                ["history", "--store", populated, "top", "--metric", "error",
                 "--min"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Top error" in out
        assert out.index("0.01") < out.index("0.02")

    def test_query_csv(self, populated, capsys):
        assert (
            main(
                ["history", "--store", populated, "query",
                 "SELECT COUNT(*) FROM runs", "--csv"]
            )
            == 0
        )
        assert capsys.readouterr().out.strip() == "2"

    def test_export_writes_bench_shape(self, populated, tmp_path, capsys):
        out_path = str(tmp_path / "exported.json")
        assert (
            main(
                ["history", "--store", populated, "export", "last",
                 "--out", out_path]
            )
            == 0
        )
        with open(out_path) as fh:
            exported = json.load(fh)
        assert exported["runs"][0]["workload"] == "kmeans"
        assert "store" in exported

    def test_gc_prunes(self, populated, capsys):
        assert main(["history", "--store", populated, "gc", "--keep", "1"]) == 0
        assert "dropped 1" in capsys.readouterr().out
        with RunStore(populated) as store:
            assert len(store.run_ids()) == 1

    def test_bad_ref_maps_to_exit_2(self, populated, capsys):
        assert main(["history", "--store", populated, "show", "nope"]) == 2

    def test_no_action_prints_help(self, populated, capsys):
        assert main(["history", "--store", populated]) == 2


class TestCompareStoreRefs:
    def test_store_and_file_diffs_agree(self, tmp_path, capsys):
        """compare store:last-1 store:last == the file-based verdict."""
        from repro.obs.compare import compare_bench

        old_rows = [summary_row(error=0.01)]
        new_rows = [summary_row(error=0.5)]  # error regression
        files = []
        db = str(tmp_path / "history.db")
        with RunStore(db) as store:
            for rows in (old_rows, new_rows):
                run_id = store.start_run(experiments=["table2"])
                for row in rows:
                    store.add_result(run_id, row)
                store.finish_run(
                    run_id, wall_s=1.0,
                    experiments={"table2": {"wall_s": 1.0}},
                )
        from repro.obs.output import write_json

        for i, rows in enumerate((old_rows, new_rows)):
            path = str(tmp_path / f"bench{i}.json")
            write_json(
                path,
                {
                    "schema": "repro-bench/v1",
                    "experiments": {"table2": {"wall_s": 1.0}},
                    "runs": rows,
                },
            )
            files.append(path)

        by_file = compare_bench(files[0], files[1])
        by_store = compare_bench(
            "store:last-1", "store:last", store_path=db
        )

        def verdicts(cmp):
            return {
                (d.key, d.metric): d.regression
                for d in cmp.deltas
            }

        assert verdicts(by_file) == verdicts(by_store)
        assert any(d.metric == "error" for d in by_store.regressions)

    def test_cli_compare_accepts_store_refs(self, tmp_path, capsys):
        db = str(tmp_path / "history.db")
        with RunStore(db) as store:
            for _ in range(2):
                run_id = store.start_run()
                store.add_result(run_id, summary_row())
        assert (
            main(
                ["compare", "store:last-1", "store:last", "--store", db]
            )
            == 0
        )
        assert "no regressions" in capsys.readouterr().out


class TestDefaultStorePath:
    def test_env_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "/elsewhere/h.db")
        assert default_store_path("ignored") == "/elsewhere/h.db"

    def test_json_dir_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert default_store_path("out/json") == os.path.join(
            "out", "json", "history.db"
        )

    def test_bare_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert default_store_path() == os.path.join(
            "results", "json", "history.db"
        )

    def test_config_digest_is_stable(self):
        a = config_digest({"b": 1, "a": 2})
        b = config_digest({"a": 2, "b": 1})
        assert a == b and len(a) == 16

    def test_load_bench_source_dispatches(self, tmp_path):
        from repro.obs.output import write_json

        path = str(tmp_path / "bench.json")
        write_json(path, {"runs": []})
        assert load_bench_source(path) == {"runs": []}
        db = str(tmp_path / "h.db")
        with RunStore(db) as store:
            run_id = store.start_run()
            store.add_result(run_id, summary_row())
        loaded = load_bench_source("store:last", db)
        assert loaded["runs"][0]["workload"] == "kmeans"


class TestCliStoreRecording:
    def test_experiment_records_into_store(self, tmp_path, capsys):
        db = str(tmp_path / "history.db")
        assert (
            main(
                ["table2", "--scale", "0.05", "--workloads", "kmeans",
                 "--json-out", str(tmp_path / "json"), "--store", db]
            )
            == 0
        )
        assert "recorded in" in capsys.readouterr().out
        with RunStore(db) as store:
            run_id = store.resolve_ref("last")
            row = store.run_row(run_id)
            assert row["finished"] == 1
            assert row["wall_s"] > 0
            assert row["cpu_s"] is not None
            assert row["experiments"]["table2"]["wall_s"] > 0
            assert row["context"]["workloads"] == ["kmeans"]
            results = store.results_for(run_id)
            assert [r["workload"] for r in results] == ["kmeans"]
            assert results[0]["accesses"] > 0

    def test_two_runs_are_distinct_rows(self, tmp_path, capsys):
        """Acceptance: consecutive table2 runs land as distinct rows."""
        db = str(tmp_path / "history.db")
        argv = [
            "table2", "--scale", "0.05", "--workloads", "kmeans",
            "--json-out", str(tmp_path / "json"), "--store", db,
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        capsys.readouterr()
        with RunStore(db) as store:
            assert len(store.run_ids()) == 2
        assert main(["history", "--store", db, "top",
                     "--metric", "accesses_per_sec"]) == 0
        out = capsys.readouterr().out
        assert out.count("kmeans") == 2
        assert main(["compare", "store:last-1", "store:last",
                     "--store", db, "--wall-threshold", "10"]) == 0

    def test_no_store_skips_recording(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        json_dir = str(tmp_path / "json")
        assert (
            main(
                ["table2", "--scale", "0.05", "--workloads", "kmeans",
                 "--json-out", json_dir, "--no-store"]
            )
            == 0
        )
        assert "recorded in" not in capsys.readouterr().out
        assert not os.path.exists(os.path.join(json_dir, "history.db"))

    def test_default_path_follows_json_out(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        json_dir = str(tmp_path / "json")
        assert (
            main(
                ["table2", "--scale", "0.05", "--workloads", "kmeans",
                 "--json-out", json_dir]
            )
            == 0
        )
        assert os.path.exists(os.path.join(json_dir, "history.db"))

    def test_unusable_store_never_fails_the_run(self, tmp_path, capsys):
        bad = str(tmp_path / "corrupt.db")
        with open(bad, "w") as fh:
            fh.write("this is not sqlite")
        assert (
            main(
                ["table2", "--scale", "0.05", "--workloads", "kmeans",
                 "--json-out", str(tmp_path / "json"), "--store", bad]
            )
            == 0
        )
        assert "unavailable" in capsys.readouterr().err
