"""Tests for the process-pool prefetch (``--jobs N``).

The acceptance bar is determinism: a parallel prefetch must leave the
context with exactly the records a sequential run would have computed,
so every downstream table is identical.
"""

import pytest

from repro.harness.parallel import _split_fan, plan_specs, prefetch_runs
from repro.harness.runner import (
    ExperimentContext,
    baseline_spec,
    dopp_spec,
    uni_spec,
)

SEED = 3
SCALE = 0.05
WORKLOADS = ["swaptions", "kmeans"]


class TestPlanSpecs:
    def test_table2_needs_baseline_only(self):
        runs, errors = plan_specs(["table2"])
        assert runs == [baseline_spec()]
        assert errors == []

    def test_fig09_sweeps_map_bits(self):
        runs, errors = plan_specs(["fig09"])
        assert baseline_spec() in runs
        assert dopp_spec(12, 0.25) in runs and dopp_spec(14, 0.25) in runs
        assert errors == [dopp_spec(b, 0.25) for b in (12, 13, 14)]

    def test_fig14_uses_uni_specs(self):
        runs, errors = plan_specs(["fig14"])
        assert uni_spec(14, 0.25) in runs
        assert uni_spec(14, 0.75) in errors

    def test_config_only_experiments_need_nothing(self):
        assert plan_specs(["fig13", "table3", "fig02"]) == ([], [])

    def test_dedup_across_experiments(self):
        runs, _ = plan_specs(["table2", "headline", "fig10"])
        assert runs.count(baseline_spec()) == 1


class TestPrefetchRuns:
    @pytest.fixture(scope="class")
    def contexts(self):
        seq = ExperimentContext(seed=SEED, scale=SCALE, workloads=WORKLOADS)
        for name in WORKLOADS:
            seq.run(name, baseline_spec())
            seq.run(name, dopp_spec(14, 0.25))
        par = ExperimentContext(seed=SEED, scale=SCALE, workloads=WORKLOADS)
        fetched = prefetch_runs(
            par, [], jobs=2,
            run_specs=[baseline_spec(), dopp_spec(14, 0.25)],
            error_specs=[],
        )
        assert fetched == 4
        return seq, par

    def test_same_pairs(self, contexts):
        seq, par = contexts
        assert set(seq._runs) == set(par._runs)

    def test_bit_identical_results(self, contexts):
        seq, par = contexts
        for key, rec in seq._runs.items():
            other = par._runs[key]
            assert other.system == rec.system
            assert other.energy == rec.energy
            assert other.accesses == rec.accesses

    def test_summaries_identical_modulo_wall_time(self, contexts):
        seq, par = contexts

        def strip(rows):
            return [
                {k: v for k, v in r.items()
                 if k not in ("sim_wall_s", "accesses_per_sec")}
                for r in rows
            ]

        assert strip(seq.run_summaries()) == strip(par.run_summaries())

    def test_prefetched_pairs_are_memo_hits(self, contexts):
        _, par = contexts
        before = par._runs[("swaptions", baseline_spec())]
        assert par.run("swaptions", baseline_spec()) is before

    def test_second_prefetch_is_a_noop(self, contexts):
        _, par = contexts
        assert prefetch_runs(
            par, [], jobs=2,
            run_specs=[baseline_spec(), dopp_spec(14, 0.25)],
            error_specs=[],
        ) == 0

    def test_experiment_plan_prefetch_with_errors(self):
        ctx = ExperimentContext(seed=SEED, scale=SCALE, workloads=["swaptions"])
        fetched = prefetch_runs(ctx, ["headline"], jobs=2)
        assert fetched == 2
        assert ("swaptions", dopp_spec(14, 0.25)) in ctx._runs


class TestSplitFan:
    def _task(self, run_specs, error_specs=()):
        return {
            "workload": "swaptions", "seed": SEED, "scale": SCALE,
            "engine": None, "run_specs": list(run_specs),
            "error_specs": list(error_specs),
        }

    def test_round_robin_partition_covers_every_spec(self):
        specs = [baseline_spec()] + [dopp_spec(b, 0.25) for b in (10, 12, 14)]
        units = _split_fan(self._task(specs), 3)
        assert len(units) == 3
        dealt = [s for u in units for s in u["run_specs"]]
        assert sorted(dealt, key=lambda s: s.label()) == sorted(
            specs, key=lambda s: s.label()
        )

    def test_never_more_chunks_than_specs(self):
        units = _split_fan(self._task([baseline_spec()]), 8)
        assert len(units) == 1
        assert units[0]["run_specs"] == [baseline_spec()]

    def test_error_specs_split_alongside(self):
        runs = [dopp_spec(b, 0.25) for b in (10, 12, 14, 15)]
        units = _split_fan(self._task(runs, runs), 2)
        assert [len(u["error_specs"]) for u in units] == [2, 2]


class TestConfigFanSplitting:
    """`--jobs N` on one workload with a config fan: split across
    workers, merged results identical to a sequential sweep."""

    @pytest.fixture(scope="class")
    def contexts(self):
        fan = [baseline_spec(), dopp_spec(14, 0.25), dopp_spec(12, 0.25),
               uni_spec(14, 0.5)]
        seq = ExperimentContext(seed=SEED, scale=SCALE, workloads=["swaptions"])
        for spec in fan:
            seq.run("swaptions", spec)
        par = ExperimentContext(seed=SEED, scale=SCALE, workloads=["swaptions"])
        fetched = prefetch_runs(
            par, [], jobs=4, run_specs=fan, error_specs=[],
        )
        assert fetched == len(fan)
        return seq, par

    def test_same_pairs(self, contexts):
        seq, par = contexts
        assert set(seq._runs) == set(par._runs)

    def test_bit_identical_results(self, contexts):
        seq, par = contexts
        for key, rec in seq._runs.items():
            other = par._runs[key]
            assert other.system == rec.system
            assert other.energy == rec.energy
            assert other.engine_stats == rec.engine_stats

    def test_summaries_identical_modulo_wall_time(self, contexts):
        seq, par = contexts

        def strip(rows):
            return [
                {k: v for k, v in r.items()
                 if k not in ("sim_wall_s", "accesses_per_sec")}
                for r in rows
            ]

        assert strip(seq.run_summaries()) == strip(par.run_summaries())

    def test_split_disabled_keeps_one_task_per_workload(self):
        fan = [baseline_spec(), dopp_spec(14, 0.25)]
        ctx = ExperimentContext(seed=SEED, scale=SCALE, workloads=["swaptions"])
        fetched = prefetch_runs(
            ctx, [], jobs=4, run_specs=fan, error_specs=[],
            split_fans=False,
        )
        assert fetched == len(fan)
