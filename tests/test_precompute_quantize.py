"""Per-trace quantization of the map hash step (engine precompute).

The clamped (avg, range) reductions depend only on region annotations,
so they are computed once per trace and rebinned per config. These
tests pin the contract: seeding from quantized stats is bit-identical
to seeding from raw block values, under every organization and
map-bit setting.
"""

import numpy as np
import pytest

from repro.core.maps import MapConfig, MapGenerator
from repro.engine.precompute import map_seed_pairs, quantize_region_values
from repro.harness.runner import ConfigSpec, dopp_spec, uni_spec
from repro.trace.record import DType
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def trace():
    return get_workload("jpeg", seed=7, scale=0.05).build_trace()


def inner(llc):
    return getattr(llc, "dopp", None) or llc.uni


class TestMapGeneratorSplit:
    def test_compute_batch_routes_through_stats(self, rng):
        gen = MapGenerator(MapConfig(bits=14), 0.0, 100.0, DType.F32)
        blocks = rng.uniform(-10.0, 110.0, size=(32, 16))  # clamping active
        avgs, rngs = gen.block_stats(blocks)
        np.testing.assert_array_equal(
            gen.compute_batch(blocks), gen.compute_from_stats(avgs, rngs)
        )

    def test_stats_are_config_independent(self, rng):
        blocks = rng.uniform(0.0, 100.0, size=(8, 16))
        stats = MapGenerator(
            MapConfig(bits=14), 0.0, 100.0, DType.F32
        ).block_stats(blocks)
        for bits in (12, 13, 14):
            gen = MapGenerator(MapConfig(bits=bits), 0.0, 100.0, DType.F32)
            np.testing.assert_array_equal(
                gen.compute_batch(blocks), gen.compute_from_stats(*stats)
            )


class TestQuantizedSeeding:
    def test_stats_cover_every_seed_pair(self, trace):
        stats = quantize_region_values(trace)
        assert set(stats) == set(map_seed_pairs(trace))
        assert stats  # jpeg has approximate regions

    def test_stats_are_cached_on_the_trace(self, trace):
        assert quantize_region_values(trace) is quantize_region_values(trace)

    @pytest.mark.parametrize(
        "spec",
        [
            dopp_spec(),
            uni_spec(),
            ConfigSpec("dopp", map_bits=12),
            ConfigSpec("uni", map_bits=13),
        ],
        ids=lambda s: s.label(),
    )
    def test_seeding_from_stats_matches_raw(self, trace, spec):
        pairs = map_seed_pairs(trace)
        stats = quantize_region_values(trace)
        from_stats = spec.build_llc(trace.regions)
        from_raw = spec.build_llc(trace.regions)
        added_s = from_stats.seed_map_memo(pairs, trace.values, stats=stats)
        added_r = from_raw.seed_map_memo(pairs, trace.values)
        assert added_s == added_r == len(pairs)
        assert inner(from_stats)._map_memo == inner(from_raw)._map_memo
