"""Tests for the typed error hierarchy and its CLI exit-code mapping.

Every user-input failure derives from :class:`repro.errors.ReproError`,
carries structured context (path/line/field) and maps to a documented
exit code: 2 for configuration, 3 for trace format, 4 for simulation
(see ``docs/robustness.md``).
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import DoppelgangerConfig
from repro.core.maps import MapConfig
from repro.errors import (
    ConfigError,
    ReproError,
    SimulationFault,
    TraceFormatError,
)
from repro.trace.io import load_trace
from repro.workloads.registry import get_workload


class TestHierarchy:
    def test_exit_codes(self):
        assert ReproError("x").exit_code == 1
        assert ConfigError("x").exit_code == 2
        assert TraceFormatError("x").exit_code == 3
        assert SimulationFault("x").exit_code == 4

    def test_backward_compatible_subclassing(self):
        # Pre-existing `except ValueError` / `except RuntimeError`
        # callers must keep working unchanged.
        assert isinstance(ConfigError("x"), ValueError)
        assert isinstance(TraceFormatError("x"), ValueError)
        assert isinstance(SimulationFault("x"), RuntimeError)
        assert isinstance(ConfigError("x"), ReproError)

    def test_context_formatting(self):
        err = ReproError("bad value", path="a.npz", line=7, field="addrs")
        assert err.context() == "a.npz:7: field 'addrs'"
        assert str(err) == "a.npz:7: field 'addrs': bad value"
        assert str(ReproError("bare")) == "bare"
        assert str(ReproError("m", field="bits")) == "field 'bits': m"
        assert ReproError("m", path="p").context() == "p"


class TestConfigErrors:
    def test_map_config_bits(self):
        with pytest.raises(ConfigError) as excinfo:
            MapConfig(bits=-1)
        assert excinfo.value.field == "bits"

    def test_doppelganger_config_pow2(self):
        with pytest.raises(ConfigError) as excinfo:
            DoppelgangerConfig(tag_entries=1000)
        assert excinfo.value.field == "tag_entries"

    def test_doppelganger_config_data_fraction(self):
        with pytest.raises(ConfigError) as excinfo:
            DoppelgangerConfig(data_fraction=2.0)
        assert excinfo.value.field == "data_fraction"

    def test_legacy_value_error_handlers_still_catch(self):
        with pytest.raises(ValueError):
            DoppelgangerConfig(tag_entries=1000)

    def test_unknown_workload(self):
        with pytest.raises(ConfigError) as excinfo:
            get_workload("nope")
        assert "nope" in str(excinfo.value)
        assert "swaptions" in str(excinfo.value)  # lists the choices
        with pytest.raises(ValueError):
            get_workload("nope")


class TestTraceErrors:
    def test_missing_file(self, tmp_path):
        path = str(tmp_path / "missing.npz")
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(path)
        assert excinfo.value.path == path
        assert "no such trace file" in str(excinfo.value)

    def test_unreadable_archive(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_text("this is not an npz archive")
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(str(path))
        assert "not a readable .npz" in str(excinfo.value)

    def test_missing_required_array_names_the_field(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, addrs=np.zeros(3, dtype=np.int64))
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(str(path))
        assert excinfo.value.field == "format_version"

    @staticmethod
    def _minimal_fields(n=0, version=1):
        zeros = np.zeros(n, dtype=np.int64)
        empty_f = np.zeros(0, dtype=np.float64)
        return dict(
            format_version=np.int64(version),
            name=np.bytes_(b"t"),
            block_size=np.int64(64),
            cores=zeros,
            addrs=zeros,
            is_write=np.zeros(n, dtype=bool),
            approx=np.zeros(n, dtype=bool),
            region_ids=zeros,
            value_ids=zeros,
            gaps=zeros,
            values_flat=empty_f,
            value_offsets=np.zeros(1, dtype=np.int64),
            image_addrs=np.zeros(0, dtype=np.int64),
            image_vids=np.zeros(0, dtype=np.int64),
            region_names=np.array([], dtype=object),
            region_base=np.zeros(0, dtype=np.int64),
            region_size=np.zeros(0, dtype=np.int64),
            region_dtype=np.zeros(0, dtype=np.int64),
            region_approx=np.zeros(0, dtype=bool),
            region_vmin=empty_f,
            region_vmax=empty_f,
        )

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "v99.npz"
        np.savez(path, **self._minimal_fields(version=99))
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(str(path))
        assert "version 99" in str(excinfo.value)
        assert excinfo.value.field == "format_version"

    def test_column_length_mismatch(self, tmp_path):
        fields = self._minimal_fields(n=3)
        fields["is_write"] = np.zeros(2, dtype=bool)
        path = tmp_path / "ragged.npz"
        np.savez(path, **fields)
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(str(path))
        assert excinfo.value.field == "is_write"
        assert excinfo.value.path == str(path)


class TestCLIExitCodes:
    def test_unknown_workload_exits_2(self, capsys):
        assert main(["table2", "--workloads", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_replay_missing_trace_exits_3(self, capsys, tmp_path):
        assert main(["replay", str(tmp_path / "missing.npz")]) == 3
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no such trace file" in err
        assert "Traceback" not in err

    def test_replay_garbage_trace_exits_3(self, capsys, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_text("nope")
        assert main(["replay", str(path)]) == 3
        assert "not a readable .npz" in capsys.readouterr().err

    def test_debug_log_level_keeps_the_traceback(self, capsys, tmp_path):
        from repro.obs import configure_logging

        try:
            assert main(
                ["table2", "--workloads", "nope", "--log-level", "debug"]
            ) == 2
            err = capsys.readouterr().err
            assert "Traceback" in err
            assert "error:" in err
        finally:
            configure_logging("warning")

    def test_bad_fault_rate_exits_2(self, capsys):
        assert main(["table3", "--fault-rate", "1.5"]) == 2
        assert "error:" in capsys.readouterr().err
