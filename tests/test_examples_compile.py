"""The example scripts must at least parse and import cleanly."""

import os
import py_compile

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SCRIPTS = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_six_examples_present():
    assert len(SCRIPTS) >= 6


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_compiles(script):
    py_compile.compile(os.path.join(EXAMPLES_DIR, script), doraise=True)


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_has_main_guard_and_doc(script):
    with open(os.path.join(EXAMPLES_DIR, script)) as fh:
        source = fh.read()
    assert '__name__ == "__main__"' in source
    assert source.lstrip().startswith(("#!/usr/bin/env python", '"""'))
    assert "Run:" in source  # usage line in the docstring
