"""End-to-end observability tests: system, harness and CLI wiring."""

import json
import os

import pytest

from repro.cache.stats import CacheStats
from repro.cli import main
from repro.harness.runner import ExperimentContext, dopp_spec
from repro.hierarchy.llc import SplitDoppelgangerLLC
from repro.hierarchy.system import System
from repro.obs import Observability, RingBufferSink
from repro.obs.events import read_jsonl
from repro.core.config import DoppelgangerConfig
from repro.core.maps import MapConfig


class TestCacheStatsExtraHandling:
    """Satellite coverage: merge/reset/as_dict with the extra dict."""

    def test_merge_does_not_alias_extra(self):
        a, b = CacheStats(), CacheStats()
        a.extra["x"] = 1
        merged = a.merge(b)
        merged.extra["x"] = 99
        assert a.extra["x"] == 1

    def test_merge_with_only_left_extra(self):
        a, b = CacheStats(), CacheStats()
        a.extra["left"] = 4
        assert a.merge(b).extra == {"left": 4}

    def test_as_dict_includes_extra_and_all_counters(self):
        stats = CacheStats(accesses=3, hits=2)
        stats.extra["custom"] = 7
        d = stats.as_dict()
        assert d["accesses"] == 3
        assert d["custom"] == 7
        assert "extra" not in d

    def test_as_dict_extra_shadows_nothing_after_reset(self):
        stats = CacheStats(accesses=1)
        stats.extra["accesses_like"] = 5
        stats.reset()
        d = stats.as_dict()
        assert d["accesses"] == 0
        assert "accesses_like" not in d

    def test_reset_clears_extra_in_place(self):
        stats = CacheStats()
        extra = stats.extra
        extra["x"] = 1
        stats.reset()
        assert stats.extra is extra
        assert extra == {}


def small_dopp_llc(regions):
    cfg = DoppelgangerConfig(
        tag_entries=256, tag_ways=4, data_fraction=0.25, data_ways=4,
        map=MapConfig(8),
    )
    return SplitDoppelgangerLLC(cfg, precise_bytes=64 * 1024, regions=regions)


class TestSystemTracing:
    def test_system_run_emits_protocol_events(self, small_trace):
        obs = Observability(enabled=True, ring_capacity=65536)
        llc = small_dopp_llc(small_trace.regions)
        system = System(llc, tracer=obs.tracer)
        system.run(small_trace)
        kinds = obs.ring.counts_by_kind()
        assert kinds.get("map_generation", 0) > 0
        assert kinds.get("tag_insert", 0) > 0

    def test_disabled_tracer_is_normalized_to_none(self, small_trace):
        obs = Observability.disabled()
        llc = small_dopp_llc(small_trace.regions)
        system = System(llc, tracer=obs.tracer)
        assert system.tracer is None
        system.run(small_trace)  # runs clean without sinks

    def test_traced_and_untraced_runs_agree(self, small_trace):
        obs = Observability(enabled=True, ring_capacity=1024)
        traced = System(small_dopp_llc(small_trace.regions), tracer=obs.tracer)
        plain = System(small_dopp_llc(small_trace.regions))
        assert traced.run(small_trace) == plain.run(small_trace)

    def test_publish_metrics_exposes_all_structures(self, small_trace):
        obs = Observability(enabled=True)
        llc = small_dopp_llc(small_trace.regions)
        system = System(llc, tracer=obs.tracer)
        system.publish_metrics(obs.registry, "sys")
        system.run(small_trace)
        out = obs.registry.collect()
        assert out["sys.l1.0.accesses"] > 0
        assert "sys.dram.reads" in out
        assert "sys.wb_buffer.enqueued" in out
        assert "sys.llc.dopp.stats.insertions" in out
        assert "sys.llc.dopp.arrays.tag_occupied" in out
        assert "sys.coherence.back_invalidations" in out


class TestExperimentContextObservability:
    @pytest.fixture(scope="class")
    def ctx_and_obs(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
        obs = Observability(enabled=True, trace_path=str(path), ring_capacity=4096)
        ctx = ExperimentContext(seed=3, scale=0.05, workloads=["swaptions"], obs=obs)
        ctx.run("swaptions", dopp_spec(14, 0.25))
        ctx.error("swaptions", dopp_spec(14, 0.25))
        obs.close()
        return ctx, obs, str(path)

    def test_phases_cover_pipeline_stages(self, ctx_and_obs):
        ctx, obs, _ = ctx_and_obs
        stages = obs.profiler.by_stage()
        for stage in ("workload", "trace", "sim", "energy", "error"):
            assert stage in stages, stages

    def test_trace_contains_doppelganger_events(self, ctx_and_obs):
        _, _, path = ctx_and_obs
        kinds = {e["kind"] for e in read_jsonl(path)}
        assert "map_generation" in kinds

    def test_run_summaries_schema(self, ctx_and_obs):
        ctx, _, _ = ctx_and_obs
        (summary,) = ctx.run_summaries()
        assert summary["workload"] == "swaptions"
        assert summary["config"] == "dopp-14bit-1/4"
        assert summary["sim_wall_s"] > 0
        assert summary["accesses_per_sec"] > 0
        assert 0.0 <= summary["llc_miss_rate"] <= 1.0
        assert summary["error"] is not None
        json.dumps(ctx.run_summaries())

    def test_context_summary(self, ctx_and_obs):
        ctx, _, _ = ctx_and_obs
        cs = ctx.context_summary()
        assert cs["seed"] == 3
        assert cs["workloads"] == ["swaptions"]

    def test_metrics_published_per_run(self, ctx_and_obs):
        ctx, obs, _ = ctx_and_obs
        out = obs.registry.collect()
        assert any(k.startswith("sim.swaptions.dopp-14bit-1/4.") for k in out)

    def test_default_context_has_inert_obs(self):
        ctx = ExperimentContext(seed=1, scale=0.05, workloads=["swaptions"])
        assert not ctx.obs.enabled
        assert ctx.obs.profiler.phases == {}


class TestCliObservability:
    def test_profile_flag_writes_all_artifacts(self, capsys, tmp_path):
        json_dir = str(tmp_path / "json")
        assert main(
            ["table2", "--scale", "0.05", "--seed", "3",
             "--workloads", "swaptions", "--json-out", json_dir, "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase profile" in out
        assert os.path.exists(os.path.join(json_dir, "table2.json"))
        assert os.path.exists(os.path.join(json_dir, "BENCH_obs.json"))
        assert os.path.exists(os.path.join(json_dir, "metrics_table2.json"))
        assert os.path.exists(os.path.join(json_dir, "trace_table2.jsonl"))
        bench = json.load(open(os.path.join(json_dir, "BENCH_obs.json")))
        assert "table2" in bench["experiments"]
        assert bench["runs"]
        assert bench["profile"]["stages"]

    def test_json_table_rows_match_text_table(self, capsys, tmp_path):
        json_dir = str(tmp_path / "json")
        main(
            ["table2", "--scale", "0.05", "--seed", "3",
             "--workloads", "swaptions", "--json-out", json_dir]
        )
        text = capsys.readouterr().out
        data = json.load(open(os.path.join(json_dir, "table2.json")))
        row = data["tables"]["main"]["rows"][0]
        assert row[0] == "swaptions"
        assert row[0] in text

    def test_trace_out_flag_standalone(self, capsys, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        json_dir = str(tmp_path / "json")
        main(
            ["fig10", "--scale", "0.05", "--seed", "3", "--workloads", "swaptions",
             "--json-out", json_dir, "--trace-out", trace_path]
        )
        capsys.readouterr()
        kinds = {e["kind"] for e in read_jsonl(trace_path)}
        assert "map_generation" in kinds

    def test_report_subcommand(self, capsys, tmp_path):
        json_dir = str(tmp_path / "json")
        main(
            ["table2", "--scale", "0.05", "--seed", "3",
             "--workloads", "swaptions", "--json-out", json_dir]
        )
        capsys.readouterr()
        assert main(["report", "--json-out", json_dir]) == 0
        out = capsys.readouterr().out
        assert "Experiment wall time" in out
        assert "table2" in out

    def test_report_without_results(self, capsys, tmp_path):
        assert main(["report", "--json-out", str(tmp_path / "missing")]) == 0
        assert "run an experiment first" in capsys.readouterr().out

    def test_log_level_flag_validates(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["list", "--log-level", "NOPE"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_log_level_flag_accepts_lowercase(self, capsys):
        assert main(["list", "--log-level", "info"]) == 0
        assert "fig10" in capsys.readouterr().out
