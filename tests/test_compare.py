"""Tests for ``repro compare`` (BENCH_obs.json regression diffing)."""

import pytest

from repro.cli import main
from repro.obs.compare import compare_bench
from repro.obs.output import BENCH_SCHEMA, write_json


def _bench(runs=None, experiments=None):
    return {
        "schema": BENCH_SCHEMA,
        "experiments": experiments or {},
        "runs": runs or [],
    }


def _run_row(workload="swaptions", config="baseline-2MB", **over):
    row = {
        "workload": workload,
        "config": config,
        "sim_wall_s": 1.0,
        "l1_hit_rate": 0.90,
        "l2_hit_rate": 0.50,
        "llc_miss_rate": 0.20,
        "error": 0.01,
    }
    row.update(over)
    return row


@pytest.fixture
def paths(tmp_path):
    def write(name, summary):
        return write_json(str(tmp_path / name), summary)

    return write


class TestCompareBench:
    def test_identical_summaries_pass(self, paths):
        old = paths("old.json", _bench([_run_row()]))
        new = paths("new.json", _bench([_run_row()]))
        cmp = compare_bench(old, new)
        assert cmp.regressions == []
        assert "no regressions" in cmp.render()

    def test_wall_time_regression_is_relative(self, paths):
        old = paths("old.json", _bench([_run_row(sim_wall_s=1.0)]))
        new = paths("new.json", _bench([_run_row(sim_wall_s=1.2)]))
        assert compare_bench(old, new, threshold=0.1).regressions
        assert not compare_bench(old, new, threshold=0.5).regressions

    def test_wall_threshold_overrides_for_wall_only(self, paths):
        old = paths(
            "old.json",
            _bench([_run_row(sim_wall_s=1.0, l1_hit_rate=0.90)],
                   experiments={"table2": {"wall_s": 1.0}}),
        )
        new = paths(
            "new.json",
            _bench([_run_row(sim_wall_s=5.0, l1_hit_rate=0.70)],
                   experiments={"table2": {"wall_s": 5.0}}),
        )
        regs = compare_bench(
            old, new, threshold=0.05, wall_threshold=1000
        ).regressions
        # Wall times tolerated; the functional drop still flags.
        assert [d.metric for d in regs] == ["l1_hit_rate"]

    def test_faster_is_not_a_regression(self, paths):
        old = paths("old.json", _bench([_run_row(sim_wall_s=2.0)]))
        new = paths("new.json", _bench([_run_row(sim_wall_s=1.0)]))
        assert not compare_bench(old, new, threshold=0.05).regressions

    def test_hit_rate_drop_is_absolute(self, paths):
        old = paths("old.json", _bench([_run_row(l1_hit_rate=0.90)]))
        new = paths("new.json", _bench([_run_row(l1_hit_rate=0.80)]))
        regs = compare_bench(old, new, threshold=0.05).regressions
        assert [d.metric for d in regs] == ["l1_hit_rate"]

    def test_error_increase_flags(self, paths):
        old = paths("old.json", _bench([_run_row(error=0.01)]))
        new = paths("new.json", _bench([_run_row(error=0.20)]))
        regs = compare_bench(old, new, threshold=0.05).regressions
        assert [d.metric for d in regs] == ["error"]

    def test_missing_error_is_skipped(self, paths):
        old = paths("old.json", _bench([_run_row(error=None)]))
        new = paths("new.json", _bench([_run_row(error=0.5)]))
        assert not compare_bench(old, new).regressions

    def test_unmatched_runs_reported(self, paths):
        old = paths("old.json", _bench([_run_row(workload="jpeg")]))
        new = paths("new.json", _bench([_run_row(workload="kmeans")]))
        cmp = compare_bench(old, new)
        assert cmp.unmatched_old == [("jpeg", "baseline-2MB")]
        assert cmp.unmatched_new == [("kmeans", "baseline-2MB")]
        assert cmp.deltas == []

    def test_experiment_wall_times_compared(self, paths):
        old = paths("old.json", _bench(experiments={"table2": {"wall_s": 1.0}}))
        new = paths("new.json", _bench(experiments={"table2": {"wall_s": 3.0}}))
        regs = compare_bench(old, new).regressions
        assert regs and regs[0].key == "experiment table2"

    def test_to_dict_roundtrips(self, paths):
        old = paths("old.json", _bench([_run_row()]))
        new = paths("new.json", _bench([_run_row(sim_wall_s=5.0)]))
        d = compare_bench(old, new).to_dict()
        assert d["regression_count"] == 1
        assert any(x["metric"] == "sim_wall_s" for x in d["deltas"])


class TestCompareCLI:
    def test_exit_zero_without_regressions(self, paths, capsys):
        old = paths("old.json", _bench([_run_row()]))
        new = paths("new.json", _bench([_run_row()]))
        assert main(["compare", old, new]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, paths, capsys):
        old = paths("old.json", _bench([_run_row(sim_wall_s=1.0)]))
        new = paths("new.json", _bench([_run_row(sim_wall_s=9.0)]))
        assert main(["compare", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag(self, paths):
        old = paths("old.json", _bench([_run_row(sim_wall_s=1.0)]))
        new = paths("new.json", _bench([_run_row(sim_wall_s=1.2)]))
        assert main(["compare", old, new, "--threshold", "0.5"]) == 0
        assert main(["compare", old, new, "--threshold", "0.1"]) == 1
