"""Tests for snapshotting a simulated LLC's contents."""

import numpy as np

from repro.analysis.storage import snapshot_from_system
from repro.core.maps import MapConfig
from repro.analysis.storage import doppelganger_savings
from repro.hierarchy.llc import BaselineLLC
from repro.hierarchy.system import System
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap
from repro.trace.trace import TraceBuilder


def _build(rng, size_kb=256):
    region = Region("r", 0, size_kb * 1024, DType.F32, approx=True, vmin=0, vmax=100)
    regions = RegionMap([region])
    builder = TraceBuilder("t", regions)
    data = rng.uniform(0, 100, region.num_elements).astype(np.float32)
    builder.register_block_values(region, data)
    idx = np.arange(region.num_blocks())
    cores = (idx % 4).astype(np.int8)
    builder.append_region_accesses(0, idx, cores, gap=8)
    return builder.build()


def test_snapshot_matches_llc_contents(rng):
    trace = _build(rng)
    llc = BaselineLLC()
    system = System(llc)
    system.run(trace)
    snapshot = snapshot_from_system(system, llc, trace)
    # The 256 KB footprint fits the 2 MB LLC entirely.
    assert len(snapshot) == trace.unique_blocks()


def test_snapshot_usable_for_savings(rng):
    trace = _build(rng)
    llc = BaselineLLC()
    system = System(llc)
    system.run(trace)
    snapshot = snapshot_from_system(system, llc, trace)
    savings = doppelganger_savings(snapshot, MapConfig(12))
    assert 0.0 <= savings < 1.0


def test_snapshot_excludes_precise(rng):
    region_a = Region("a", 0, 64 * 1024, DType.F32, approx=True, vmin=0, vmax=100)
    region_p = Region("p", 1 << 20, 64 * 1024, DType.I32, approx=False)
    regions = RegionMap([region_a, region_p])
    builder = TraceBuilder("t", regions)
    data = rng.uniform(0, 100, region_a.num_elements).astype(np.float32)
    builder.register_block_values(region_a, data)
    pdata = rng.integers(0, 100, region_p.num_elements).astype(np.int32)
    builder.register_block_values(region_p, pdata)
    idx = np.arange(region_a.num_blocks())
    builder.append_region_accesses(0, idx, np.zeros(len(idx), np.int8), gap=4)
    builder.append_region_accesses(1, idx, np.zeros(len(idx), np.int8), gap=4)
    trace = builder.build()

    llc = BaselineLLC()
    system = System(llc)
    system.run(trace)
    snapshot = snapshot_from_system(system, llc, trace)
    assert len(snapshot) == region_a.num_blocks()
