#!/usr/bin/env python
"""Documentation checks, run by the ``docs-check`` CI job.

Two passes over the repo's markdown:

1. **Link check** — every intra-repo markdown link (``[text](path)``
   with a relative target) must resolve to an existing file or
   directory. External (``http``/``https``/``mailto``) and pure
   fragment (``#...``) links are skipped; a ``path#fragment`` target
   is checked for the file only.
2. **Example check** — fenced ```` ```pycon ```` blocks are extracted
   per file, concatenated (so later fences can reuse earlier names),
   and executed with :mod:`doctest` (``ELLIPSIS`` +
   ``NORMALIZE_WHITESPACE``). Run with ``PYTHONPATH=src`` so the
   examples can ``import repro``.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import doctest
import os
import re
import sys
from typing import Iterator, List

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: [text](target) — target up to the first ')' or whitespace.
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```pycon[ \t]*\n(.*?)^```[ \t]*$", re.M | re.S)
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files() -> Iterator[str]:
    """Every tracked-looking ``.md`` file under the repo root."""
    for dirpath, dirnames, filenames in os.walk(REPO):
        dirnames[:] = sorted(
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
        )
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_links(path: str) -> List[str]:
    """Broken intra-repo links in one markdown file, as messages."""
    problems = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target.split("#", 1)[0])
                )
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, REPO)
                    problems.append(
                        f"{rel}:{lineno}: broken link -> {target}"
                    )
    return problems


def check_examples(path: str) -> List[str]:
    """Run a file's ```pycon fences as one doctest; failures as messages."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    fences = FENCE_RE.findall(text)
    if not fences:
        return []
    rel = os.path.relpath(path, REPO)
    parser = doctest.DocTestParser()
    test = parser.get_doctest(
        "\n".join(fences), {"__name__": "__docs__"}, rel, rel, 0
    )
    out: List[str] = []
    runner = doctest.DocTestRunner(
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE
    )
    runner.run(test, out=out.append)
    results = runner.summarize(verbose=False)
    if results.failed:
        return ["".join(out).rstrip() or f"{rel}: doctest failure"]
    print(f"{rel}: {results.attempted} example(s) OK")
    return []


def main() -> int:
    """Run both checks over every markdown file; 0 iff all clean."""
    problems: List[str] = []
    for path in markdown_files():
        problems.extend(check_links(path))
    for path in markdown_files():
        problems.extend(check_examples(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
