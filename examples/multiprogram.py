#!/usr/bin/env python
"""Multiprogrammed workloads sharing one Doppelgänger LLC (Sec. 4.1).

The paper notes that Doppelgänger supports multiprogramming by keeping
each application's declared value ranges in a small register set. This
example co-schedules two benchmarks with *different* element ranges —
kmeans (pixels, [0, 255]) and swaptions (rates-to-notionals, [0, 100])
— on a 4-core system: two cores each, disjoint address spaces, one
shared LLC. It compares the conventional baseline against the split
Doppelgänger design for the combined run.

Run:  python examples/multiprogram.py
"""

from repro.core import DoppelgangerConfig, MapConfig
from repro.harness.reporting import Table
from repro.hierarchy import BaselineLLC, SplitDoppelgangerLLC, System
from repro.trace.multiprogram import merge_traces
from repro.workloads import get_workload


def main() -> None:
    kmeans = get_workload("kmeans", seed=5, scale=0.25)
    swaptions = get_workload("swaptions", seed=5, scale=0.25)
    merged = merge_traces(
        [kmeans.build_trace(), swaptions.build_trace()],
        core_groups=[[0, 1], [2, 3]],
    )
    print(
        f"merged trace: {len(merged)} accesses, "
        f"{len(merged.regions)} regions from 2 programs, "
        f"{merged.footprint_bytes() // 1024} KB combined footprint"
    )
    approx_regions = merged.regions.approx_regions()
    ranges = {(r.vmin, r.vmax) for r in approx_regions}
    print(f"per-application declared ranges registered at the LLC: {sorted(ranges)}\n")

    baseline = BaselineLLC(regions=merged.regions)
    base = System(baseline).run(merged)

    llc = SplitDoppelgangerLLC(
        DoppelgangerConfig(data_fraction=0.25, map=MapConfig(14)),
        regions=merged.regions,
    )
    dopp = System(llc).run(merged)
    llc.dopp.check_invariants()

    table = Table(
        "Multiprogrammed kmeans + swaptions on one shared LLC",
        ["metric", "baseline 2MB", "split Doppelganger"],
    )
    table.add_row("cycles", base.cycles, dopp.cycles)
    table.add_row("LLC misses", base.llc_misses, dopp.llc_misses)
    table.add_row("off-chip traffic KB", base.traffic_bytes // 1024,
                  dopp.traffic_bytes // 1024)
    table.add_row("approx insertions sharing a block %",
                  None,
                  100.0 * llc.dopp.stats.shared_insertions
                  / max(llc.dopp.stats.insertions, 1))
    print(table.render())

    hist = llc.dopp.tags_per_entry_histogram()
    print("\ntags-per-data-entry histogram (end of run):",
          dict(sorted(hist.items())))


if __name__ == "__main__":
    main()
