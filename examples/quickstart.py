#!/usr/bin/env python
"""Quickstart: the Doppelgänger cache in five minutes.

Walks the public API end to end:

1. build an annotated workload (the jpeg benchmark),
2. inspect approximate similarity in its data (the paper's Sec. 2),
3. run the structural Doppelgänger cache on the workload's memory
   trace inside the full 4-core hierarchy, against the conventional
   baseline LLC,
4. measure application output error with the functional model,
5. price the hardware with the CACTI-calibrated energy/area model.

Run:  python examples/quickstart.py
"""

from repro.core import BlockApproximator, DoppelgangerConfig, MapConfig
from repro.core.maps import MapGenerator
from repro.energy import EnergyModel
from repro.harness.reporting import Table
from repro.hierarchy import BaselineLLC, SplitDoppelgangerLLC, System
from repro.workloads import get_workload


def main() -> None:
    # ------------------------------------------------------------ 1. workload
    workload = get_workload("jpeg", seed=7, scale=0.25)
    print(workload.describe())

    # ------------------------------------------------- 2. approximate similarity
    # Find two image blocks the hardware would deem doppelgängers:
    # different addresses, same (average, range) map.
    image = workload.region_data("image").astype(float)
    region = workload.region("image")
    gen = MapGenerator(MapConfig(bits=14), region.vmin, region.vmax, region.dtype)
    blocks = image.reshape(-1, 64)
    maps = gen.compute_batch(blocks)
    seen = {}
    pair = None
    for i, m in enumerate(maps):
        if m in seen:
            pair = (seen[m], i)
            break
        seen[m] = i
    a, b = pair
    block_a, block_b = blocks[a], blocks[b]
    print(f"\nblock {a:5d}: avg={block_a.mean():6.2f} "
          f"range={block_a.max() - block_a.min():5.1f} map={maps[a]}")
    print(f"block {b:5d}: avg={block_b.mean():6.2f} "
          f"range={block_b.max() - block_b.min():5.1f} map={maps[b]}")
    print("-> equal maps: these blocks would share ONE data-array entry\n")

    # ------------------------------------------------------ 3. cycle simulation
    trace = workload.build_trace()
    print(f"trace: {len(trace)} accesses, {trace.footprint_bytes() // 1024} KB footprint")

    baseline = BaselineLLC(regions=trace.regions)
    base_result = System(baseline).run(trace)

    config = DoppelgangerConfig(data_fraction=0.25, map=MapConfig(14))
    dopp_llc = SplitDoppelgangerLLC(config, regions=trace.regions)
    dopp_result = System(dopp_llc).run(trace)

    table = Table("Baseline 2MB LLC vs split Doppelgänger (1MB precise + 256KB data)",
                  ["metric", "baseline", "doppelganger"])
    table.add_row("cycles", base_result.cycles, dopp_result.cycles)
    table.add_row("LLC misses", base_result.llc_misses, dopp_result.llc_misses)
    table.add_row("off-chip KB", base_result.traffic_bytes // 1024,
                  dopp_result.traffic_bytes // 1024)
    table.add_row("tags per shared entry (current)", None,
                  round(dopp_llc.dopp.current_avg_tags_per_entry(), 2))
    print()
    print(table.render())

    # ------------------------------------------------------------- 4. error
    approximator = BlockApproximator(MapConfig(14), data_entries=config.data_entries)
    error = workload.evaluate_error(approximator)
    print(f"\napplication output error: {100 * error:.2f}% "
          f"(sharing rate {approximator.sharing_rate():.2f})")

    # ------------------------------------------------------------ 5. energy
    model = EnergyModel()
    base_energy = model.dynamic_energy(baseline, cycles=base_result.cycles)
    dopp_energy = model.dynamic_energy(dopp_llc, cycles=dopp_result.cycles)
    print(f"\nLLC area:           {base_energy.area_mm2:.2f} mm2 -> "
          f"{dopp_energy.area_mm2:.2f} mm2 "
          f"({base_energy.area_mm2 / dopp_energy.area_mm2:.2f}x reduction)")
    print(f"LLC dynamic energy: {base_energy.dynamic_pj / 1e6:.2f} uJ -> "
          f"{dopp_energy.dynamic_pj / 1e6:.2f} uJ "
          f"({base_energy.dynamic_pj / dopp_energy.dynamic_pj:.2f}x reduction)")


if __name__ == "__main__":
    main()
