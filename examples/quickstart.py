#!/usr/bin/env python
"""Quickstart: the Doppelgänger cache in five minutes.

Walks the public API (``docs/api.md``) end to end:

1. build an annotated workload (the jpeg benchmark),
2. inspect approximate similarity in its data (the paper's Sec. 2),
3. run the structural Doppelgänger cache on the workload's memory
   trace inside the full 4-core hierarchy, against the conventional
   baseline LLC — one ``repro.simulate`` call per configuration,
4. measure application output error with the functional model,
5. price the hardware with the CACTI-calibrated energy/area model
   (bundled into every simulation's :class:`repro.RunRecord`).

Run:  python examples/quickstart.py
"""

import repro
from repro.core import MapConfig
from repro.core.maps import MapGenerator
from repro.harness.reporting import Table


def main() -> None:
    # ------------------------------------------------------------ 1. workload
    # One context = one (seed, scale) universe; workloads, traces and
    # simulations are all memoized inside it. REPRO_SCALE=0.25 shrinks
    # the dataset (and the cache structures with it) for a quick pass.
    ctx = repro.ExperimentContext(seed=7, workloads=["jpeg"])
    workload = ctx.workload("jpeg")
    print(workload.describe())

    # ------------------------------------------------- 2. approximate similarity
    # Find two image blocks the hardware would deem doppelgängers:
    # different addresses, same (average, range) map.
    image = workload.region_data("image").astype(float)
    region = workload.region("image")
    gen = MapGenerator(MapConfig(bits=14), region.vmin, region.vmax, region.dtype)
    blocks = image.reshape(-1, 64)
    maps = gen.compute_batch(blocks)
    seen = {}
    pair = None
    for i, m in enumerate(maps):
        if m in seen:
            pair = (seen[m], i)
            break
        seen[m] = i
    a, b = pair
    block_a, block_b = blocks[a], blocks[b]
    print(f"\nblock {a:5d}: avg={block_a.mean():6.2f} "
          f"range={block_a.max() - block_a.min():5.1f} map={maps[a]}")
    print(f"block {b:5d}: avg={block_b.mean():6.2f} "
          f"range={block_b.max() - block_b.min():5.1f} map={maps[b]}")
    print("-> equal maps: these blocks would share ONE data-array entry\n")

    # ------------------------------------------------------ 3. cycle simulation
    trace = ctx.trace("jpeg")
    print(f"trace: {len(trace)} accesses, {trace.footprint_bytes() // 1024} KB footprint")

    # repro.simulate = trace -> 4-core hierarchy -> timing + energy,
    # memoized per (workload, config). "baseline" and "dopp" are
    # shorthands for the paper's configurations.
    base = repro.simulate("jpeg", "baseline", ctx=ctx)
    spec = repro.dopp_spec(map_bits=14, data_fraction=0.25)
    dopp = repro.simulate("jpeg", spec, ctx=ctx)

    table = Table("Baseline 2MB LLC vs split Doppelgänger (1MB precise + 1/4 data)",
                  ["metric", "baseline", "doppelganger"])
    table.add_row("cycles", base.system.cycles, dopp.system.cycles)
    table.add_row("LLC misses", base.system.llc_misses, dopp.system.llc_misses)
    table.add_row("off-chip KB", base.system.traffic_bytes // 1024,
                  dopp.system.traffic_bytes // 1024)
    table.add_row("tags per shared entry (current)", None,
                  round(dopp.llc.dopp.current_avg_tags_per_entry(), 2))
    print()
    print(table.render())

    # ------------------------------------------------------------- 4. error
    approximator = spec.approximator(ctx.size_factor)
    error = workload.evaluate_error(approximator)
    print(f"\napplication output error: {100 * error:.2f}% "
          f"(sharing rate {approximator.sharing_rate():.2f})")

    # ------------------------------------------------------------ 5. energy
    # Every RunRecord carries its energy report; rec.to_dict() bundles
    # config + system + energy in the unified JSON schema.
    base_energy, dopp_energy = base.energy, dopp.energy
    print(f"\nLLC area:           {base_energy.area_mm2:.2f} mm2 -> "
          f"{dopp_energy.area_mm2:.2f} mm2 "
          f"({base_energy.area_mm2 / dopp_energy.area_mm2:.2f}x reduction)")
    print(f"LLC dynamic energy: {base_energy.dynamic_pj / 1e6:.2f} uJ -> "
          f"{dopp_energy.dynamic_pj / 1e6:.2f} uJ "
          f"({base_energy.dynamic_pj / dopp_energy.dynamic_pj:.2f}x reduction)")


if __name__ == "__main__":
    main()
