#!/usr/bin/env python
"""Design-space exploration: the map-space / data-array trade-off.

Section 5 of the paper treats the map-space size (M) and the
approximate data-array size as the two design knobs: smaller map
spaces and smaller arrays save more energy and area but cost output
error and (slightly) runtime. This example sweeps both knobs on one
benchmark and prints the trade-off surface, ending with the paper's
chosen operating point (14-bit, 1/4).

Run:  python examples/design_space_exploration.py [workload]
"""

import sys

import repro
from repro.energy import EnergyModel
from repro.energy.structures import baseline_llc_structure, doppelganger_structures
from repro.harness.reporting import Table

MAP_BITS = (12, 13, 14)
FRACTIONS = (0.5, 0.25, 0.125)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "kmeans"
    ctx = repro.ExperimentContext(seed=7, scale=0.5, workloads=[name])
    model = EnergyModel()
    base_area = model.cacti.area_mm2(baseline_llc_structure())

    table = Table(
        f"Design space for {name}: error / runtime / area vs (M, data array)",
        ["map bits", "data array", "output error %", "norm. runtime",
         "dyn. energy x", "area x"],
        precision=2,
    )
    for bits in MAP_BITS:
        for frac in FRACTIONS:
            spec = repro.dopp_spec(map_bits=bits, data_fraction=frac)
            error = 100.0 * ctx.error(name, spec)
            runtime = ctx.normalized_runtime(name, spec)
            dyn = ctx.dynamic_energy_reduction(name, spec)
            area = sum(
                model.cacti.area_mm2(s)
                for s in doppelganger_structures(
                    data_fraction=frac, map_bits=bits
                ).values()
            )
            table.add_row(bits, f"1/{round(1 / frac)}", error, runtime,
                          dyn, base_area / area)
    table.add_note("paper's operating point: 14-bit map, 1/4 data array")
    print(table.render())

    best = repro.dopp_spec(map_bits=14, data_fraction=0.25)
    print(
        f"\nchosen point -> error {100 * ctx.error(name, best):.2f}%, "
        f"runtime {ctx.normalized_runtime(name, best):.3f}x, "
        f"dynamic energy {ctx.dynamic_energy_reduction(name, best):.2f}x"
    )


if __name__ == "__main__":
    main()
