#!/usr/bin/env python
"""Characterize approximate similarity in your data (the Sec. 2 tool).

The paper's first contribution is a *characterization*: how much
approximately-similar data do applications keep in the LLC? This
example reproduces that methodology over all nine benchmarks — the
element-wise threshold measure of Fig. 2 side by side with the
block-hash measure the Doppelgänger hardware actually uses (Fig. 7) —
and shows where they diverge (inversek2j, jmeint: almost no
element-wise similarity, plenty of hash-level similarity).

Run:  python examples/similarity_survey.py
"""

from repro.analysis.similarity import threshold_storage_savings
from repro.analysis.storage import doppelganger_savings, snapshot_from_workload
from repro.core.maps import MapConfig
from repro.harness.reporting import Table
from repro.workloads import all_workloads

SAMPLE = 1536  # blocks per region for the O(n*k) element-wise measure


def main() -> None:
    table = Table(
        "Approximate similarity: element-wise (T=1%) vs block-hash (14-bit map)",
        ["workload", "element-wise savings", "map savings", "hash advantage"],
    )
    for workload in all_workloads(seed=7, scale=0.5):
        snapshot = snapshot_from_workload(workload)
        elementwise_parts = []
        for region, blocks in snapshot.groups():
            if len(blocks) > SAMPLE:
                blocks = blocks[:: len(blocks) // SAMPLE][:SAMPLE]
            savings = threshold_storage_savings(
                blocks, 0.01, region.vmax - region.vmin
            )
            elementwise_parts.append((len(blocks), savings))
        total = sum(n for n, _ in elementwise_parts)
        elementwise = (
            sum(n * s for n, s in elementwise_parts) / total if total else 0.0
        )
        hash_savings = doppelganger_savings(snapshot, MapConfig(14))
        table.add_row(
            workload.name,
            elementwise,
            hash_savings,
            hash_savings - elementwise,
        )
    table.add_note(
        "positive advantage = aggregating values per block (avg+range hash) "
        "finds similarity that per-element comparison misses (Sec. 5.1)"
    )
    print(table.render())


if __name__ == "__main__":
    main()
