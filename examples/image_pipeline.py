#!/usr/bin/env python
"""Domain scenario: an image-processing pipeline on approximate memory.

The paper's motivating domain (Fig. 1) is image data: pixel blocks of
smooth regions are natural doppelgängers. This example chains the two
image benchmarks — JPEG encoding and k-means palette segmentation —
with all image data living in a Doppelgänger LLC, and quantifies what
an end user sees: output quality vs storage saved, across map-space
sizes.

Run:  python examples/image_pipeline.py
"""

import numpy as np

from repro.core import BlockApproximator, MapConfig
from repro.harness.reporting import Table
from repro.workloads import get_workload


def main() -> None:
    jpeg = get_workload("jpeg", seed=11, scale=0.5)
    kmeans = get_workload("kmeans", seed=11, scale=0.5)

    jpeg_precise = jpeg.run(None)
    kmeans_precise = kmeans.run(None)

    table = Table(
        "Image pipeline quality vs approximate-cache aggressiveness",
        ["map space", "jpeg pixel error %", "kmeans misassign %",
         "blocks shared %", "verdict"],
        precision=2,
    )
    for bits in (14, 13, 12, 10):
        # One shared data array for the whole pipeline run.
        approximator = BlockApproximator(MapConfig(bits), data_entries=4096)
        jpeg_out = jpeg.run(approximator)
        kmeans_out = kmeans.run(approximator)
        jpeg_err = 100.0 * jpeg.error(jpeg_precise, jpeg_out)
        km_err = 100.0 * kmeans.error(kmeans_precise, kmeans_out)
        shared = 100.0 * approximator.sharing_rate()
        acceptable = jpeg_err < 10.0 and km_err < 10.0
        table.add_row(
            f"{bits}-bit", jpeg_err, km_err, shared,
            "acceptable" if acceptable else "degraded",
        )
    table.add_note("approximate computing rule of thumb: <10% output error")
    print(table.render())

    # Show the substitution effect on actual pixel values.
    image = jpeg.region_data("image")
    approximator = BlockApproximator(MapConfig(14), data_entries=4096)
    substituted = approximator.filter(image, jpeg.region("image"))
    delta = np.abs(substituted.astype(int) - image.astype(int))
    print(
        f"\npixel substitution at 14-bit: mean |delta| = {delta.mean():.2f} "
        f"grey levels, 99th percentile = {np.percentile(delta, 99):.0f}, "
        f"{(delta == 0).mean() * 100:.1f}% of pixels untouched"
    )


if __name__ == "__main__":
    main()
