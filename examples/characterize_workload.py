#!/usr/bin/env python
"""Would YOUR data benefit from a Doppelgänger cache?

The adoption question for this architecture is always the same: does
the application's data exhibit enough block-level approximate
similarity, and what map-space size / data-array size should the
designer pick? This example runs the characterization tool over a
benchmark and walks through that sizing decision — the same reasoning
behind the paper's choice of a 14-bit map with a 1/4 data array.

Run:  python examples/characterize_workload.py [workload]
"""

import sys

from repro.analysis.characterize import characterize_workload
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "jpeg"
    workload = get_workload(name, seed=7, scale=0.5)
    print(workload.describe())

    ch = characterize_workload(workload, bits_sweep=(8, 10, 12, 13, 14, 16))
    print()
    print(ch.to_table().render())

    print("\nper-region value profile:")
    for profile in ch.regions:
        print(
            f"  {profile.name:14} {profile.blocks:6d} blocks | "
            f"avg {profile.avg_mean:8.2f} ± {profile.avg_std:7.2f} | "
            f"range {profile.range_mean:8.2f} ± {profile.range_std:7.2f} | "
            f"avg occupies {100 * profile.avg_concentration:5.1f}% of declared span"
        )

    print("\nsharing at 14-bit (tag-list length -> map groups):")
    hist = dict(sorted(ch.sharing_histogram.items()))
    shown = dict(list(hist.items())[:12])
    print(f"  {shown}{' ...' if len(hist) > 12 else ''}")
    print(f"  mean blocks per occupied map: {ch.avg_tags_per_map():.2f}")

    # The sizing decision the designer faces.
    for entries, label in ((2048, "1/8 data array"), (4096, "1/4 data array"),
                           (8192, "1/2 data array")):
        bits = ch.max_bits_for_entries(entries)
        verdict = f"finest safe map: {bits}-bit" if bits else "does not fit any surveyed M"
        print(f"  {label} ({entries} entries): {verdict}")


if __name__ == "__main__":
    main()
